package gadget

import (
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/asm"
	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// binFrom assembles source into a one-section executable.
func binFrom(t *testing.T, src string, base uint64) *sbf.Binary {
	t.Helper()
	r, err := asm.Assemble(src, base)
	if err != nil {
		t.Fatal(err)
	}
	bin := sbf.New()
	bin.AddSection(sbf.Section{
		Name: ".text", Addr: base, Flags: sbf.FlagRead | sbf.FlagExec, Data: r.Code,
	})
	return bin
}

// findByString locates a pool gadget whose rendering contains the fragment.
func findByString(p *Pool, frag string) *Gadget {
	for _, g := range p.Gadgets {
		if contains(g.String(), frag) {
			return g
		}
	}
	return nil
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestExtractPopRet(t *testing.T) {
	bin := binFrom(t, "pop rdi; ret", 0x1000)
	pool := Extract(bin, Options{})
	// Expect at least: "pop rdi; ret" and the unaligned "ret" alone.
	if pool.Size() < 2 {
		t.Fatalf("pool size = %d", pool.Size())
	}
	g := findByString(pool, "pop rdi")
	if g == nil {
		t.Fatal("pop rdi gadget not found")
	}
	if g.JmpType != TypeReturn {
		t.Errorf("type = %v", g.JmpType)
	}
	if len(g.CtrlRegs) != 1 || g.CtrlRegs[0] != isa.RDI {
		t.Errorf("ctrl regs = %v", g.CtrlRegs)
	}
	if len(g.ClobRegs) != 1 || g.ClobRegs[0] != isa.RDI {
		t.Errorf("clob regs = %v", g.ClobRegs)
	}
	if g.Effect.StackDelta != 16 {
		t.Errorf("delta = %d", g.Effect.StackDelta)
	}
	// ByReg index must find it under RDI.
	found := false
	for _, idx := range pool.ByReg[isa.RDI] {
		if idx == g {
			found = true
		}
	}
	if !found {
		t.Error("gadget not indexed by rdi")
	}
}

func TestExtractUnalignedGadgets(t *testing.T) {
	// The movabs immediate hides "pop rax; ret" at offset 7.
	src := "movabs rax, 0x00c3580000000000; ret"
	bin := binFrom(t, src, 0x1000)
	pool := Extract(bin, Options{})
	var g *Gadget
	for _, cand := range pool.Gadgets {
		if cand.Location == 0x1007 && cand.Steps[0].Inst.Op == isa.OpPop {
			g = cand
		}
	}
	if g == nil {
		t.Fatal("hidden pop rax gadget at 0x1007 not found")
	}
	if g.Steps[0].Inst.A.Reg != isa.RAX {
		t.Errorf("gadget = %s", g)
	}
}

func TestExtractMergesDirectJumps(t *testing.T) {
	src := `
g1: pop rsi
    jmp g2
    nop
g2: pop rdx
    ret
`
	bin := binFrom(t, src, 0x1000)
	pool := Extract(bin, Options{})
	g := findByString(pool, "pop rsi")
	if g == nil {
		t.Fatal("merged gadget not found")
	}
	if !g.Merged {
		t.Error("gadget not marked merged")
	}
	// The merged gadget controls both rsi and rdx.
	if len(g.CtrlRegs) != 2 {
		t.Errorf("ctrl regs = %v", g.CtrlRegs)
	}
	if pool.Stats.MergedGadgets == 0 {
		t.Error("no merged gadgets in stats")
	}
}

func TestExtractForksConditionals(t *testing.T) {
	src := `
    pop rax
    cmp rdx, rbx
    jne other
    pop rbx
    ret
other:
    pop rcx
    ret
`
	bin := binFrom(t, src, 0x1000)
	pool := Extract(bin, Options{})
	// Both paths from the gadget start must be in the pool: the fall-through
	// (controls rbx, pre-cond rdx==rbx) and the taken path (controls rcx,
	// pre-cond rdx!=rbx).
	var fall, taken *Gadget
	for _, g := range pool.Gadgets {
		if g.Location != 0x1000 {
			continue
		}
		if contains(g.String(), "pop rbx") {
			fall = g
		}
		if contains(g.String(), "pop rcx") {
			taken = g
		}
	}
	if fall == nil || taken == nil {
		t.Fatalf("missing fork variants: fall=%v taken=%v", fall, taken)
	}
	for _, g := range []*Gadget{fall, taken} {
		if !g.HasCond || len(g.Effect.Conds) != 1 {
			t.Errorf("gadget %s: hasCond=%v conds=%v", g, g.HasCond, g.Effect.Conds)
		}
	}
	// Check the conditions are complementary.
	envEq := expr.Env{"rdx0": 5, "rbx0": 5}
	fOK, _ := expr.EvalBool(fall.Effect.Conds[0], envEq)
	tOK, _ := expr.EvalBool(taken.Effect.Conds[0], envEq)
	if !fOK || tOK {
		t.Errorf("conds under equal: fall=%v taken=%v", fOK, tOK)
	}
}

func TestExtractSyscallGadget(t *testing.T) {
	bin := binFrom(t, "pop rax; syscall", 0x1000)
	pool := Extract(bin, Options{})
	if len(pool.Syscalls) == 0 {
		t.Fatal("no syscall gadgets")
	}
	g := findByString(pool, "syscall")
	if g.JmpType != TypeSyscall {
		t.Errorf("type = %v", g.JmpType)
	}
}

func TestExtractJOPGadget(t *testing.T) {
	bin := binFrom(t, "pop rbp; jmp rax", 0x1000)
	pool := Extract(bin, Options{})
	g := findByString(pool, "jmp rax")
	if g == nil {
		t.Fatal("jop gadget not found")
	}
	if g.JmpType != TypeUIJ {
		t.Errorf("type = %v", g.JmpType)
	}
	if g.Effect.NextRIP != pool.Builder.Var(symex.RegVarName(isa.RAX), 64) {
		t.Errorf("nextRIP = %s", g.Effect.NextRIP)
	}
}

func TestClassify(t *testing.T) {
	jcc := symex.Step{Inst: isa.Inst{Op: isa.OpJcc}}
	plain := symex.Step{Inst: isa.Inst{Op: isa.OpPop}}
	tests := []struct {
		steps []symex.Step
		end   symex.EndKind
		want  JmpType
	}{
		{[]symex.Step{plain}, symex.EndRet, TypeReturn},
		{[]symex.Step{plain}, symex.EndJmpDir, TypeUDJ},
		{[]symex.Step{plain}, symex.EndJmpInd, TypeUIJ},
		{[]symex.Step{jcc, plain}, symex.EndJmpDir, TypeCDJ},
		{[]symex.Step{jcc, plain}, symex.EndJmpInd, TypeCIJ},
		{[]symex.Step{jcc, plain}, symex.EndCallInd, TypeCIJ},
		{[]symex.Step{plain}, symex.EndSyscall, TypeSyscall},
	}
	for _, tt := range tests {
		if got := Classify(tt.steps, tt.end); got != tt.want {
			t.Errorf("Classify(end=%v) = %v, want %v", tt.end, got, tt.want)
		}
	}
}

func TestCount(t *testing.T) {
	src := `
    pop rdi
    ret
    jmp rax
    cmp rax, rbx
    jne 0x1000
    jmp rcx
`
	bin := binFrom(t, src, 0x1000)
	counts := Count(bin, 10)
	if counts[TypeReturn] == 0 {
		t.Error("no return gadgets counted")
	}
	if counts[TypeUIJ] == 0 {
		t.Error("no UIJ gadgets counted")
	}
	if counts[TypeCIJ] == 0 {
		t.Error("no CIJ gadgets counted (jne ... jmp rcx)")
	}
	if TotalCount(counts) == 0 {
		t.Error("total zero")
	}
}

func TestStatsTracked(t *testing.T) {
	// Include an unsupported gadget (division).
	bin := binFrom(t, "cqo; idiv rbx; ret", 0x1000)
	pool := Extract(bin, Options{})
	if pool.Stats.Unsupported == 0 {
		t.Error("unsupported gadgets not counted")
	}
	if pool.Stats.ScannedOffsets == 0 || pool.Stats.RawCandidates == 0 {
		t.Errorf("stats = %+v", pool.Stats)
	}
	// The plain "ret" suffix must still be supported.
	if pool.Stats.Supported == 0 {
		t.Error("no supported gadgets")
	}
}

func TestMaxInstsRespected(t *testing.T) {
	src := `
    nop; nop; nop; nop; nop; nop
    ret
`
	bin := binFrom(t, src, 0x1000)
	pool := Extract(bin, Options{MaxInsts: 3})
	for _, g := range pool.Gadgets {
		if g.NumInsts() > 3 {
			t.Errorf("gadget %s exceeds MaxInsts", g)
		}
	}
}
