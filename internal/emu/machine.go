package emu

import (
	"errors"
	"fmt"
	"math/bits"

	"github.com/nofreelunch/gadget-planner/internal/isa"
)

// Run-time errors.
var (
	ErrHalted      = errors.New("emu: hlt executed")
	ErrBreakpoint  = errors.New("emu: int3 executed")
	ErrDivByZero   = errors.New("emu: integer division by zero")
	ErrDivOverflow = errors.New("emu: idiv quotient overflow")
	ErrStepLimit   = errors.New("emu: step limit exceeded")
)

// SyscallHandler receives syscall instructions. The handler reads arguments
// from and writes results into the machine's registers. Returning exit=true
// stops the run loop cleanly.
type SyscallHandler interface {
	Syscall(m *Machine) (exit bool, err error)
}

// Machine is one emulated hart: registers, flags and an address space. The
// register file is sized for the largest supported ISA; the active backend
// determines how many slots are live and which of them is the stack pointer.
type Machine struct {
	Regs [isa.MaxRegs]uint64
	RIP  uint64

	// Flags (x86-64 backend only; RISC-V has no flags register).
	ZF, SF, OF, CF, PF bool

	Mem   *Memory
	OS    SyscallHandler
	Steps uint64

	// Backend register model, cached at construction.
	be      isa.Backend
	sp      isa.Reg
	abi     isa.SyscallABI
	zero    isa.Reg
	hasZero bool
	link    isa.Reg
	hasLink bool

	// icache is a direct-mapped decoded-instruction cache, invalidated
	// when executable memory is written (self-modifying code).
	icache    []icEntry
	icacheGen uint64
}

type icEntry struct {
	addr  uint64
	inst  isa.Inst
	valid bool
}

const icacheSize = 1 << 14

// NewMachine returns an x86-64 machine with an empty address space.
func NewMachine() *Machine {
	return NewMachineISA(isa.X64)
}

// NewMachineISA returns a machine executing the given backend's ISA.
func NewMachineISA(be isa.Backend) *Machine {
	m := &Machine{Mem: NewMemory(), icache: make([]icEntry, icacheSize), be: be}
	m.sp = be.SP()
	m.abi = be.Syscall()
	m.zero, m.hasZero = be.ZeroReg()
	m.link, m.hasLink = be.LinkReg()
	return m
}

// ISA returns the machine's backend.
func (m *Machine) ISA() isa.Backend { return m.be }

// SyscallABI returns the backend's syscall register convention.
func (m *Machine) SyscallABI() isa.SyscallABI { return m.abi }

// SetupStack maps a stack region and points the stack pointer at its top
// (minus a small red zone). It returns the initial stack pointer.
func (m *Machine) SetupStack(base, size uint64) uint64 {
	m.Mem.Map(base, size, PermRead|PermWrite)
	top := base + size - 64
	m.Regs[m.sp] = top
	return top
}

// SP returns the backend's stack pointer register.
func (m *Machine) SP() isa.Reg { return m.sp }

func maskFor(size uint8) uint64 {
	switch size {
	case 1:
		return 0xFF
	case 2:
		return 0xFFFF
	case 4:
		return 0xFFFF_FFFF
	default:
		return ^uint64(0)
	}
}

func opBits(size uint8) uint { return uint(size) * 8 }

func signBit(v uint64, size uint8) bool {
	return v>>(opBits(size)-1)&1 == 1
}

// effAddr computes the effective address of a memory operand.
func (m *Machine) effAddr(mem isa.Mem, instEnd uint64) uint64 {
	if mem.RIPRel {
		return instEnd + uint64(int64(mem.Disp))
	}
	var a uint64
	if mem.HasBase {
		a = m.Regs[mem.Base]
	}
	if mem.HasIndex {
		a += m.Regs[mem.Index] * uint64(mem.Scale)
	}
	return a + uint64(int64(mem.Disp))
}

func (m *Machine) readOperand(op isa.Operand, size uint8, instEnd uint64) (uint64, error) {
	switch op.Kind {
	case isa.KindReg:
		return m.Regs[op.Reg] & maskFor(size), nil
	case isa.KindImm:
		return uint64(op.Imm) & maskFor(size), nil
	case isa.KindMem:
		return m.Mem.Read(m.effAddr(op.Mem, instEnd), int(size))
	}
	return 0, fmt.Errorf("emu: read of empty operand")
}

func (m *Machine) writeOperand(op isa.Operand, size uint8, v uint64, instEnd uint64) error {
	switch op.Kind {
	case isa.KindReg:
		if m.hasZero && op.Reg == m.zero {
			return nil // writes to the hardwired zero register vanish
		}
		switch size {
		case 8:
			m.Regs[op.Reg] = v
		case 4:
			m.Regs[op.Reg] = v & 0xFFFF_FFFF // 32-bit writes zero-extend
		case 2:
			m.Regs[op.Reg] = m.Regs[op.Reg]&^uint64(0xFFFF) | v&0xFFFF
		case 1:
			m.Regs[op.Reg] = m.Regs[op.Reg]&^uint64(0xFF) | v&0xFF
		}
		return nil
	case isa.KindMem:
		return m.Mem.Write(m.effAddr(op.Mem, instEnd), v, int(size))
	}
	return fmt.Errorf("emu: write to non-lvalue operand")
}

// setPZS sets the parity, zero, and sign flags from a result.
func (m *Machine) setPZS(r uint64, size uint8) {
	r &= maskFor(size)
	m.ZF = r == 0
	m.SF = signBit(r, size)
	m.PF = bits.OnesCount8(uint8(r))%2 == 0
}

// condHolds evaluates an x86 condition code against the current flags.
func (m *Machine) condHolds(c isa.Cond) bool {
	switch c {
	case isa.CondO:
		return m.OF
	case isa.CondNO:
		return !m.OF
	case isa.CondB:
		return m.CF
	case isa.CondAE:
		return !m.CF
	case isa.CondE:
		return m.ZF
	case isa.CondNE:
		return !m.ZF
	case isa.CondBE:
		return m.CF || m.ZF
	case isa.CondA:
		return !m.CF && !m.ZF
	case isa.CondS:
		return m.SF
	case isa.CondNS:
		return !m.SF
	case isa.CondP:
		return m.PF
	case isa.CondNP:
		return !m.PF
	case isa.CondL:
		return m.SF != m.OF
	case isa.CondGE:
		return m.SF == m.OF
	case isa.CondLE:
		return m.ZF || m.SF != m.OF
	default: // CondG
		return !m.ZF && m.SF == m.OF
	}
}

func (m *Machine) push(v uint64) error {
	m.Regs[m.sp] -= 8
	return m.Mem.Write(m.Regs[m.sp], v, 8)
}

func (m *Machine) pop() (uint64, error) {
	v, err := m.Mem.Read(m.Regs[m.sp], 8)
	if err != nil {
		return 0, err
	}
	m.Regs[m.sp] += 8
	return v, nil
}

// fetch decodes the instruction at RIP, using the decode cache.
func (m *Machine) fetch() (isa.Inst, error) {
	if gen := m.Mem.CodeGeneration(); gen != m.icacheGen {
		m.icacheGen = gen
		for i := range m.icache {
			m.icache[i].valid = false
		}
	}
	slot := &m.icache[(m.RIP^m.RIP>>7)&(icacheSize-1)]
	if slot.valid && slot.addr == m.RIP {
		// Permission may have changed (mprotect); re-check executability.
		if m.Mem.PermAt(m.RIP)&PermExec == 0 {
			return isa.Inst{}, &MemFault{Addr: m.RIP, Op: "exec"}
		}
		return slot.inst, nil
	}
	window, err := m.Mem.FetchWindow(m.RIP, 16)
	if err != nil {
		return isa.Inst{}, err
	}
	inst, err := m.be.Decode(window, m.RIP)
	if err != nil {
		return isa.Inst{}, fmt.Errorf("emu: decode at %#x: %w", m.RIP, err)
	}
	*slot = icEntry{addr: m.RIP, inst: inst, valid: true}
	return inst, nil
}

// Step executes one instruction. It returns exit=true when the syscall
// handler requests a clean stop.
func (m *Machine) Step() (exit bool, err error) {
	inst, err := m.fetch()
	if err != nil {
		return false, err
	}
	m.Steps++
	next := inst.End()
	size := inst.Size
	if size == 0 {
		size = 8
	}

	// RISC-V three-operand ALU forms (A = B op C) dispatch before the
	// two-operand x86 cases so OpAdd et al. keep their x86 semantics when C
	// is absent.
	if inst.C.Kind != isa.KindNone {
		switch inst.Op {
		case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
			isa.OpShl, isa.OpShr, isa.OpSar, isa.OpImul, isa.OpSlt, isa.OpSltu,
			isa.OpDiv, isa.OpDivU, isa.OpRem, isa.OpRemU:
			if err := m.stepRV3(&inst, next); err != nil {
				return false, err
			}
			m.RIP = next
			return false, nil
		}
	}

	switch inst.Op {
	case isa.OpNop:

	case isa.OpMov:
		v, err := m.readOperand(inst.B, size, next)
		if err != nil {
			return false, err
		}
		if err := m.writeOperand(inst.A, size, v, next); err != nil {
			return false, err
		}

	case isa.OpLea:
		if err := m.writeOperand(inst.A, size, m.effAddr(inst.B.Mem, next), next); err != nil {
			return false, err
		}

	case isa.OpAdd, isa.OpSub, isa.OpCmp, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpTest:
		a, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		b, err := m.readOperand(inst.B, size, next)
		if err != nil {
			return false, err
		}
		var r uint64
		switch inst.Op {
		case isa.OpAdd:
			r = (a + b) & maskFor(size)
			m.CF = r < a
			m.OF = signBit(^(a^b)&(a^r), size)
		case isa.OpSub, isa.OpCmp:
			r = (a - b) & maskFor(size)
			m.CF = a < b
			m.OF = signBit((a^b)&(a^r), size)
		case isa.OpAnd, isa.OpTest:
			r = a & b
			m.CF, m.OF = false, false
		case isa.OpOr:
			r = a | b
			m.CF, m.OF = false, false
		case isa.OpXor:
			r = a ^ b
			m.CF, m.OF = false, false
		}
		m.setPZS(r, size)
		if inst.Op != isa.OpCmp && inst.Op != isa.OpTest {
			if err := m.writeOperand(inst.A, size, r, next); err != nil {
				return false, err
			}
		}

	case isa.OpNot:
		a, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		if err := m.writeOperand(inst.A, size, ^a&maskFor(size), next); err != nil {
			return false, err
		}

	case isa.OpNeg:
		a, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		r := (-a) & maskFor(size)
		m.CF = a != 0
		m.OF = a != 0 && a == (uint64(1)<<(opBits(size)-1))
		m.setPZS(r, size)
		if err := m.writeOperand(inst.A, size, r, next); err != nil {
			return false, err
		}

	case isa.OpInc, isa.OpDec:
		a, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		var r uint64
		if inst.Op == isa.OpInc {
			r = (a + 1) & maskFor(size)
			m.OF = r == uint64(1)<<(opBits(size)-1)
		} else {
			r = (a - 1) & maskFor(size)
			m.OF = a == uint64(1)<<(opBits(size)-1)
		}
		m.setPZS(r, size) // CF is preserved by inc/dec
		if err := m.writeOperand(inst.A, size, r, next); err != nil {
			return false, err
		}

	case isa.OpImul:
		a, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		b, err := m.readOperand(inst.B, size, next)
		if err != nil {
			return false, err
		}
		r := (a * b) & maskFor(size)
		// CF/OF set when the full signed product does not fit.
		hi, lo := bits.Mul64(a, b)
		_ = hi
		if size == 8 {
			sHi, _ := mulS128(int64(a), int64(b))
			full := sHi != int64(r)>>63
			m.CF, m.OF = full, full
		} else {
			sa := int64(int32(uint32(a)))
			sb := int64(int32(uint32(b)))
			p := sa * sb
			full := p != int64(int32(p))
			m.CF, m.OF = full, full
		}
		_ = lo
		m.setPZS(r, size)
		if err := m.writeOperand(inst.A, size, r, next); err != nil {
			return false, err
		}

	case isa.OpShl, isa.OpShr, isa.OpSar:
		a, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		cnt, err := m.readOperand(inst.B, 1, next)
		if err != nil {
			return false, err
		}
		cnt &= 0x3F
		if size == 4 {
			cnt &= 0x1F
		}
		if cnt != 0 {
			var r uint64
			switch inst.Op {
			case isa.OpShl:
				m.CF = cnt <= uint64(opBits(size)) && (a>>(uint64(opBits(size))-cnt))&1 == 1
				r = (a << cnt) & maskFor(size)
			case isa.OpShr:
				m.CF = (a>>(cnt-1))&1 == 1
				r = a >> cnt
			case isa.OpSar:
				m.CF = (a>>(cnt-1))&1 == 1
				sv := int64(a << (64 - opBits(size)))
				r = uint64(sv>>(64-opBits(size))>>cnt) & maskFor(size)
			}
			m.OF = false
			m.setPZS(r, size)
			if err := m.writeOperand(inst.A, size, r, next); err != nil {
				return false, err
			}
		}

	case isa.OpPush:
		v, err := m.readOperand(inst.A, 8, next)
		if err != nil {
			return false, err
		}
		if inst.A.Kind == isa.KindImm {
			v = uint64(inst.A.Imm) // push imm sign-extends to 64 bits
		}
		if err := m.push(v); err != nil {
			return false, err
		}

	case isa.OpPop:
		v, err := m.pop()
		if err != nil {
			return false, err
		}
		if err := m.writeOperand(inst.A, 8, v, next); err != nil {
			return false, err
		}

	case isa.OpRet:
		v, err := m.pop()
		if err != nil {
			return false, err
		}
		if inst.A.Kind == isa.KindImm {
			m.Regs[isa.RSP] += uint64(inst.A.Imm)
		}
		m.RIP = v
		return false, nil

	case isa.OpJmp:
		if inst.A.Kind == isa.KindImm {
			m.RIP = uint64(inst.A.Imm)
			return false, nil
		}
		v, err := m.readOperand(inst.A, 8, next)
		if err != nil {
			return false, err
		}
		if inst.B.Kind == isa.KindImm {
			v += uint64(inst.B.Imm) // RISC-V jr rs1, offset
		}
		if m.hasLink {
			v &^= 1 // RISC-V jalr clears the target's low bit
		}
		m.RIP = v
		return false, nil

	case isa.OpJcc:
		if m.condHolds(inst.Cond) {
			m.RIP = uint64(inst.A.Imm)
			return false, nil
		}

	case isa.OpBcc:
		a, err := m.readOperand(inst.B, 8, next)
		if err != nil {
			return false, err
		}
		b, err := m.readOperand(inst.C, 8, next)
		if err != nil {
			return false, err
		}
		var taken bool
		switch inst.Cond {
		case isa.CondE:
			taken = a == b
		case isa.CondNE:
			taken = a != b
		case isa.CondL:
			taken = int64(a) < int64(b)
		case isa.CondGE:
			taken = int64(a) >= int64(b)
		case isa.CondB:
			taken = a < b
		case isa.CondAE:
			taken = a >= b
		default:
			return false, fmt.Errorf("emu: bad branch condition %v at %#x", inst.Cond, inst.Addr)
		}
		if taken {
			m.RIP = uint64(inst.A.Imm)
			return false, nil
		}

	case isa.OpJal:
		if err := m.writeOperand(inst.B, 8, next, next); err != nil {
			return false, err
		}
		m.RIP = uint64(inst.A.Imm)
		return false, nil

	case isa.OpJalr:
		v, err := m.readOperand(inst.A, 8, next)
		if err != nil {
			return false, err
		}
		if inst.C.Kind == isa.KindImm {
			v += uint64(inst.C.Imm)
		}
		if err := m.writeOperand(inst.B, 8, next, next); err != nil {
			return false, err
		}
		m.RIP = v &^ 1
		return false, nil

	case isa.OpCall:
		var target uint64
		if inst.A.Kind == isa.KindImm {
			target = uint64(inst.A.Imm)
		} else {
			v, err := m.readOperand(inst.A, 8, next)
			if err != nil {
				return false, err
			}
			if inst.B.Kind == isa.KindImm {
				v += uint64(inst.B.Imm) // RISC-V jalr ra, rs1, offset
			}
			if m.hasLink {
				v &^= 1
			}
			target = v
		}
		if m.hasLink {
			m.Regs[m.link] = next
		} else if err := m.push(next); err != nil {
			return false, err
		}
		m.RIP = target
		return false, nil

	case isa.OpLoad, isa.OpLoadU:
		v, err := m.readOperand(inst.B, size, next)
		if err != nil {
			return false, err
		}
		if inst.Op == isa.OpLoad && size < 8 {
			sh := 64 - opBits(size)
			v = uint64(int64(v<<sh) >> sh)
		}
		if err := m.writeOperand(inst.A, 8, v, next); err != nil {
			return false, err
		}

	case isa.OpAuipc:
		if err := m.writeOperand(inst.A, 8, inst.Addr+uint64(inst.B.Imm), next); err != nil {
			return false, err
		}

	case isa.OpLeave:
		m.Regs[isa.RSP] = m.Regs[isa.RBP]
		v, err := m.pop()
		if err != nil {
			return false, err
		}
		m.Regs[isa.RBP] = v

	case isa.OpXchg:
		a, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		b, err := m.readOperand(inst.B, size, next)
		if err != nil {
			return false, err
		}
		if err := m.writeOperand(inst.A, size, b, next); err != nil {
			return false, err
		}
		if err := m.writeOperand(inst.B, size, a, next); err != nil {
			return false, err
		}

	case isa.OpMovzx:
		v, err := m.readOperand(inst.B, 1, next)
		if err != nil {
			return false, err
		}
		if err := m.writeOperand(inst.A, size, v, next); err != nil {
			return false, err
		}

	case isa.OpMovsxd:
		v, err := m.readOperand(inst.B, 4, next)
		if err != nil {
			return false, err
		}
		if err := m.writeOperand(inst.A, 8, uint64(int64(int32(uint32(v)))), next); err != nil {
			return false, err
		}

	case isa.OpSetcc:
		var v uint64
		if m.condHolds(inst.Cond) {
			v = 1
		}
		if err := m.writeOperand(inst.A, 1, v, next); err != nil {
			return false, err
		}

	case isa.OpCqo:
		if size == 8 {
			m.Regs[isa.RDX] = uint64(int64(m.Regs[isa.RAX]) >> 63)
		} else {
			m.Regs[isa.RDX] = uint64(uint32(int32(uint32(m.Regs[isa.RAX])) >> 31))
		}

	case isa.OpIdiv:
		d, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		if d == 0 {
			return false, ErrDivByZero
		}
		if size == 8 {
			lo := int64(m.Regs[isa.RAX])
			hi := int64(m.Regs[isa.RDX])
			if hi != lo>>63 {
				return false, ErrDivOverflow
			}
			q := lo / int64(d)
			r := lo % int64(d)
			m.Regs[isa.RAX] = uint64(q)
			m.Regs[isa.RDX] = uint64(r)
		} else {
			lo := int64(int32(uint32(m.Regs[isa.RAX])))
			q := lo / int64(int32(uint32(d)))
			r := lo % int64(int32(uint32(d)))
			m.Regs[isa.RAX] = uint64(uint32(int32(q)))
			m.Regs[isa.RDX] = uint64(uint32(int32(r)))
		}

	case isa.OpSyscall:
		if m.OS == nil {
			return false, fmt.Errorf("emu: syscall at %#x with no handler", inst.Addr)
		}
		if !m.hasLink {
			// x86-64 syscall clobbers rcx (return rip) and r11 (rflags);
			// RISC-V ecall clobbers nothing.
			m.Regs[isa.RCX] = next
			m.Regs[isa.R11] = 0x202
		}
		exit, err := m.OS.Syscall(m)
		if err != nil || exit {
			return exit, err
		}

	case isa.OpHlt:
		return false, ErrHalted
	case isa.OpInt3:
		return false, ErrBreakpoint

	default:
		return false, fmt.Errorf("emu: unimplemented op %s at %#x", inst.Op, inst.Addr)
	}

	m.RIP = next
	return false, nil
}

// stepRV3 executes a RISC-V three-operand ALU instruction: A = B op C, full
// 64-bit width, no flag effects.
func (m *Machine) stepRV3(inst *isa.Inst, next uint64) error {
	a, err := m.readOperand(inst.B, 8, next)
	if err != nil {
		return err
	}
	b, err := m.readOperand(inst.C, 8, next)
	if err != nil {
		return err
	}
	var r uint64
	switch inst.Op {
	case isa.OpAdd:
		r = a + b
	case isa.OpSub:
		r = a - b
	case isa.OpAnd:
		r = a & b
	case isa.OpOr:
		r = a | b
	case isa.OpXor:
		r = a ^ b
	case isa.OpShl:
		r = a << (b & 63)
	case isa.OpShr:
		r = a >> (b & 63)
	case isa.OpSar:
		r = uint64(int64(a) >> (b & 63))
	case isa.OpImul:
		r = a * b
	case isa.OpSlt:
		if int64(a) < int64(b) {
			r = 1
		}
	case isa.OpSltu:
		if a < b {
			r = 1
		}
	case isa.OpDiv:
		switch {
		case b == 0:
			r = ^uint64(0) // RISC-V: division by zero yields -1
		case int64(a) == -1<<63 && int64(b) == -1:
			r = a // signed overflow yields the dividend
		default:
			r = uint64(int64(a) / int64(b))
		}
	case isa.OpDivU:
		if b == 0 {
			r = ^uint64(0)
		} else {
			r = a / b
		}
	case isa.OpRem:
		switch {
		case b == 0:
			r = a // remainder of division by zero is the dividend
		case int64(a) == -1<<63 && int64(b) == -1:
			r = 0
		default:
			r = uint64(int64(a) % int64(b))
		}
	case isa.OpRemU:
		if b == 0 {
			r = a
		} else {
			r = a % b
		}
	}
	return m.writeOperand(inst.A, 8, r, next)
}

// mulS128 returns the high and low halves of the full 128-bit signed product.
func mulS128(a, b int64) (hi, lo int64) {
	uhi, ulo := bits.Mul64(uint64(a), uint64(b))
	shi := int64(uhi)
	if a < 0 {
		shi -= b
	}
	if b < 0 {
		shi -= a
	}
	return shi, int64(ulo)
}

// Run steps the machine until the syscall handler requests exit, an error
// occurs, or maxSteps instructions have executed.
func (m *Machine) Run(maxSteps uint64) error {
	for i := uint64(0); i < maxSteps; i++ {
		exit, err := m.Step()
		if err != nil {
			return err
		}
		if exit {
			return nil
		}
	}
	return ErrStepLimit
}
