package emu

import (
	"errors"
	"fmt"
	"math/bits"

	"github.com/nofreelunch/gadget-planner/internal/isa"
)

// Run-time errors.
var (
	ErrHalted      = errors.New("emu: hlt executed")
	ErrBreakpoint  = errors.New("emu: int3 executed")
	ErrDivByZero   = errors.New("emu: integer division by zero")
	ErrDivOverflow = errors.New("emu: idiv quotient overflow")
	ErrStepLimit   = errors.New("emu: step limit exceeded")
)

// SyscallHandler receives syscall instructions. The handler reads arguments
// from and writes results into the machine's registers. Returning exit=true
// stops the run loop cleanly.
type SyscallHandler interface {
	Syscall(m *Machine) (exit bool, err error)
}

// Machine is one emulated hart: registers, flags and an address space.
type Machine struct {
	Regs [isa.NumRegs]uint64
	RIP  uint64

	// Flags.
	ZF, SF, OF, CF, PF bool

	Mem   *Memory
	OS    SyscallHandler
	Steps uint64

	// icache is a direct-mapped decoded-instruction cache, invalidated
	// when executable memory is written (self-modifying code).
	icache    []icEntry
	icacheGen uint64
}

type icEntry struct {
	addr  uint64
	inst  isa.Inst
	valid bool
}

const icacheSize = 1 << 14

// NewMachine returns a machine with an empty address space.
func NewMachine() *Machine {
	return &Machine{Mem: NewMemory(), icache: make([]icEntry, icacheSize)}
}

// SetupStack maps a stack region and points rsp at its top (minus a small
// red zone). It returns the initial rsp.
func (m *Machine) SetupStack(base, size uint64) uint64 {
	m.Mem.Map(base, size, PermRead|PermWrite)
	top := base + size - 64
	m.Regs[isa.RSP] = top
	return top
}

func maskFor(size uint8) uint64 {
	switch size {
	case 1:
		return 0xFF
	case 4:
		return 0xFFFF_FFFF
	default:
		return ^uint64(0)
	}
}

func opBits(size uint8) uint { return uint(size) * 8 }

func signBit(v uint64, size uint8) bool {
	return v>>(opBits(size)-1)&1 == 1
}

// effAddr computes the effective address of a memory operand.
func (m *Machine) effAddr(mem isa.Mem, instEnd uint64) uint64 {
	if mem.RIPRel {
		return instEnd + uint64(int64(mem.Disp))
	}
	var a uint64
	if mem.HasBase {
		a = m.Regs[mem.Base]
	}
	if mem.HasIndex {
		a += m.Regs[mem.Index] * uint64(mem.Scale)
	}
	return a + uint64(int64(mem.Disp))
}

func (m *Machine) readOperand(op isa.Operand, size uint8, instEnd uint64) (uint64, error) {
	switch op.Kind {
	case isa.KindReg:
		return m.Regs[op.Reg] & maskFor(size), nil
	case isa.KindImm:
		return uint64(op.Imm) & maskFor(size), nil
	case isa.KindMem:
		return m.Mem.Read(m.effAddr(op.Mem, instEnd), int(size))
	}
	return 0, fmt.Errorf("emu: read of empty operand")
}

func (m *Machine) writeOperand(op isa.Operand, size uint8, v uint64, instEnd uint64) error {
	switch op.Kind {
	case isa.KindReg:
		switch size {
		case 8:
			m.Regs[op.Reg] = v
		case 4:
			m.Regs[op.Reg] = v & 0xFFFF_FFFF // 32-bit writes zero-extend
		case 1:
			m.Regs[op.Reg] = m.Regs[op.Reg]&^uint64(0xFF) | v&0xFF
		}
		return nil
	case isa.KindMem:
		return m.Mem.Write(m.effAddr(op.Mem, instEnd), v, int(size))
	}
	return fmt.Errorf("emu: write to non-lvalue operand")
}

// setPZS sets the parity, zero, and sign flags from a result.
func (m *Machine) setPZS(r uint64, size uint8) {
	r &= maskFor(size)
	m.ZF = r == 0
	m.SF = signBit(r, size)
	m.PF = bits.OnesCount8(uint8(r))%2 == 0
}

// condHolds evaluates an x86 condition code against the current flags.
func (m *Machine) condHolds(c isa.Cond) bool {
	switch c {
	case isa.CondO:
		return m.OF
	case isa.CondNO:
		return !m.OF
	case isa.CondB:
		return m.CF
	case isa.CondAE:
		return !m.CF
	case isa.CondE:
		return m.ZF
	case isa.CondNE:
		return !m.ZF
	case isa.CondBE:
		return m.CF || m.ZF
	case isa.CondA:
		return !m.CF && !m.ZF
	case isa.CondS:
		return m.SF
	case isa.CondNS:
		return !m.SF
	case isa.CondP:
		return m.PF
	case isa.CondNP:
		return !m.PF
	case isa.CondL:
		return m.SF != m.OF
	case isa.CondGE:
		return m.SF == m.OF
	case isa.CondLE:
		return m.ZF || m.SF != m.OF
	default: // CondG
		return !m.ZF && m.SF == m.OF
	}
}

func (m *Machine) push(v uint64) error {
	m.Regs[isa.RSP] -= 8
	return m.Mem.Write(m.Regs[isa.RSP], v, 8)
}

func (m *Machine) pop() (uint64, error) {
	v, err := m.Mem.Read(m.Regs[isa.RSP], 8)
	if err != nil {
		return 0, err
	}
	m.Regs[isa.RSP] += 8
	return v, nil
}

// fetch decodes the instruction at RIP, using the decode cache.
func (m *Machine) fetch() (isa.Inst, error) {
	if gen := m.Mem.CodeGeneration(); gen != m.icacheGen {
		m.icacheGen = gen
		for i := range m.icache {
			m.icache[i].valid = false
		}
	}
	slot := &m.icache[(m.RIP^m.RIP>>7)&(icacheSize-1)]
	if slot.valid && slot.addr == m.RIP {
		// Permission may have changed (mprotect); re-check executability.
		if m.Mem.PermAt(m.RIP)&PermExec == 0 {
			return isa.Inst{}, &MemFault{Addr: m.RIP, Op: "exec"}
		}
		return slot.inst, nil
	}
	window, err := m.Mem.FetchWindow(m.RIP, 16)
	if err != nil {
		return isa.Inst{}, err
	}
	inst, err := isa.Decode(window, m.RIP)
	if err != nil {
		return isa.Inst{}, fmt.Errorf("emu: decode at %#x: %w", m.RIP, err)
	}
	*slot = icEntry{addr: m.RIP, inst: inst, valid: true}
	return inst, nil
}

// Step executes one instruction. It returns exit=true when the syscall
// handler requests a clean stop.
func (m *Machine) Step() (exit bool, err error) {
	inst, err := m.fetch()
	if err != nil {
		return false, err
	}
	m.Steps++
	next := inst.End()
	size := inst.Size
	if size == 0 {
		size = 8
	}

	switch inst.Op {
	case isa.OpNop:

	case isa.OpMov:
		v, err := m.readOperand(inst.B, size, next)
		if err != nil {
			return false, err
		}
		if err := m.writeOperand(inst.A, size, v, next); err != nil {
			return false, err
		}

	case isa.OpLea:
		if err := m.writeOperand(inst.A, size, m.effAddr(inst.B.Mem, next), next); err != nil {
			return false, err
		}

	case isa.OpAdd, isa.OpSub, isa.OpCmp, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpTest:
		a, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		b, err := m.readOperand(inst.B, size, next)
		if err != nil {
			return false, err
		}
		var r uint64
		switch inst.Op {
		case isa.OpAdd:
			r = (a + b) & maskFor(size)
			m.CF = r < a
			m.OF = signBit(^(a^b)&(a^r), size)
		case isa.OpSub, isa.OpCmp:
			r = (a - b) & maskFor(size)
			m.CF = a < b
			m.OF = signBit((a^b)&(a^r), size)
		case isa.OpAnd, isa.OpTest:
			r = a & b
			m.CF, m.OF = false, false
		case isa.OpOr:
			r = a | b
			m.CF, m.OF = false, false
		case isa.OpXor:
			r = a ^ b
			m.CF, m.OF = false, false
		}
		m.setPZS(r, size)
		if inst.Op != isa.OpCmp && inst.Op != isa.OpTest {
			if err := m.writeOperand(inst.A, size, r, next); err != nil {
				return false, err
			}
		}

	case isa.OpNot:
		a, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		if err := m.writeOperand(inst.A, size, ^a&maskFor(size), next); err != nil {
			return false, err
		}

	case isa.OpNeg:
		a, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		r := (-a) & maskFor(size)
		m.CF = a != 0
		m.OF = a != 0 && a == (uint64(1)<<(opBits(size)-1))
		m.setPZS(r, size)
		if err := m.writeOperand(inst.A, size, r, next); err != nil {
			return false, err
		}

	case isa.OpInc, isa.OpDec:
		a, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		var r uint64
		if inst.Op == isa.OpInc {
			r = (a + 1) & maskFor(size)
			m.OF = r == uint64(1)<<(opBits(size)-1)
		} else {
			r = (a - 1) & maskFor(size)
			m.OF = a == uint64(1)<<(opBits(size)-1)
		}
		m.setPZS(r, size) // CF is preserved by inc/dec
		if err := m.writeOperand(inst.A, size, r, next); err != nil {
			return false, err
		}

	case isa.OpImul:
		a, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		b, err := m.readOperand(inst.B, size, next)
		if err != nil {
			return false, err
		}
		r := (a * b) & maskFor(size)
		// CF/OF set when the full signed product does not fit.
		hi, lo := bits.Mul64(a, b)
		_ = hi
		if size == 8 {
			sHi, _ := mulS128(int64(a), int64(b))
			full := sHi != int64(r)>>63
			m.CF, m.OF = full, full
		} else {
			sa := int64(int32(uint32(a)))
			sb := int64(int32(uint32(b)))
			p := sa * sb
			full := p != int64(int32(p))
			m.CF, m.OF = full, full
		}
		_ = lo
		m.setPZS(r, size)
		if err := m.writeOperand(inst.A, size, r, next); err != nil {
			return false, err
		}

	case isa.OpShl, isa.OpShr, isa.OpSar:
		a, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		cnt, err := m.readOperand(inst.B, 1, next)
		if err != nil {
			return false, err
		}
		cnt &= 0x3F
		if size == 4 {
			cnt &= 0x1F
		}
		if cnt != 0 {
			var r uint64
			switch inst.Op {
			case isa.OpShl:
				m.CF = cnt <= uint64(opBits(size)) && (a>>(uint64(opBits(size))-cnt))&1 == 1
				r = (a << cnt) & maskFor(size)
			case isa.OpShr:
				m.CF = (a>>(cnt-1))&1 == 1
				r = a >> cnt
			case isa.OpSar:
				m.CF = (a>>(cnt-1))&1 == 1
				sv := int64(a << (64 - opBits(size)))
				r = uint64(sv>>(64-opBits(size))>>cnt) & maskFor(size)
			}
			m.OF = false
			m.setPZS(r, size)
			if err := m.writeOperand(inst.A, size, r, next); err != nil {
				return false, err
			}
		}

	case isa.OpPush:
		v, err := m.readOperand(inst.A, 8, next)
		if err != nil {
			return false, err
		}
		if inst.A.Kind == isa.KindImm {
			v = uint64(inst.A.Imm) // push imm sign-extends to 64 bits
		}
		if err := m.push(v); err != nil {
			return false, err
		}

	case isa.OpPop:
		v, err := m.pop()
		if err != nil {
			return false, err
		}
		if err := m.writeOperand(inst.A, 8, v, next); err != nil {
			return false, err
		}

	case isa.OpRet:
		v, err := m.pop()
		if err != nil {
			return false, err
		}
		if inst.A.Kind == isa.KindImm {
			m.Regs[isa.RSP] += uint64(inst.A.Imm)
		}
		m.RIP = v
		return false, nil

	case isa.OpJmp:
		if inst.A.Kind == isa.KindImm {
			m.RIP = uint64(inst.A.Imm)
			return false, nil
		}
		v, err := m.readOperand(inst.A, 8, next)
		if err != nil {
			return false, err
		}
		m.RIP = v
		return false, nil

	case isa.OpJcc:
		if m.condHolds(inst.Cond) {
			m.RIP = uint64(inst.A.Imm)
			return false, nil
		}

	case isa.OpCall:
		var target uint64
		if inst.A.Kind == isa.KindImm {
			target = uint64(inst.A.Imm)
		} else {
			v, err := m.readOperand(inst.A, 8, next)
			if err != nil {
				return false, err
			}
			target = v
		}
		if err := m.push(next); err != nil {
			return false, err
		}
		m.RIP = target
		return false, nil

	case isa.OpLeave:
		m.Regs[isa.RSP] = m.Regs[isa.RBP]
		v, err := m.pop()
		if err != nil {
			return false, err
		}
		m.Regs[isa.RBP] = v

	case isa.OpXchg:
		a, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		b, err := m.readOperand(inst.B, size, next)
		if err != nil {
			return false, err
		}
		if err := m.writeOperand(inst.A, size, b, next); err != nil {
			return false, err
		}
		if err := m.writeOperand(inst.B, size, a, next); err != nil {
			return false, err
		}

	case isa.OpMovzx:
		v, err := m.readOperand(inst.B, 1, next)
		if err != nil {
			return false, err
		}
		if err := m.writeOperand(inst.A, size, v, next); err != nil {
			return false, err
		}

	case isa.OpMovsxd:
		v, err := m.readOperand(inst.B, 4, next)
		if err != nil {
			return false, err
		}
		if err := m.writeOperand(inst.A, 8, uint64(int64(int32(uint32(v)))), next); err != nil {
			return false, err
		}

	case isa.OpSetcc:
		var v uint64
		if m.condHolds(inst.Cond) {
			v = 1
		}
		if err := m.writeOperand(inst.A, 1, v, next); err != nil {
			return false, err
		}

	case isa.OpCqo:
		if size == 8 {
			m.Regs[isa.RDX] = uint64(int64(m.Regs[isa.RAX]) >> 63)
		} else {
			m.Regs[isa.RDX] = uint64(uint32(int32(uint32(m.Regs[isa.RAX])) >> 31))
		}

	case isa.OpIdiv:
		d, err := m.readOperand(inst.A, size, next)
		if err != nil {
			return false, err
		}
		if d == 0 {
			return false, ErrDivByZero
		}
		if size == 8 {
			lo := int64(m.Regs[isa.RAX])
			hi := int64(m.Regs[isa.RDX])
			if hi != lo>>63 {
				return false, ErrDivOverflow
			}
			q := lo / int64(d)
			r := lo % int64(d)
			m.Regs[isa.RAX] = uint64(q)
			m.Regs[isa.RDX] = uint64(r)
		} else {
			lo := int64(int32(uint32(m.Regs[isa.RAX])))
			q := lo / int64(int32(uint32(d)))
			r := lo % int64(int32(uint32(d)))
			m.Regs[isa.RAX] = uint64(uint32(int32(q)))
			m.Regs[isa.RDX] = uint64(uint32(int32(r)))
		}

	case isa.OpSyscall:
		if m.OS == nil {
			return false, fmt.Errorf("emu: syscall at %#x with no handler", inst.Addr)
		}
		// Hardware clobbers rcx (return rip) and r11 (rflags).
		m.Regs[isa.RCX] = next
		m.Regs[isa.R11] = 0x202
		exit, err := m.OS.Syscall(m)
		if err != nil || exit {
			return exit, err
		}

	case isa.OpHlt:
		return false, ErrHalted
	case isa.OpInt3:
		return false, ErrBreakpoint

	default:
		return false, fmt.Errorf("emu: unimplemented op %s at %#x", inst.Op, inst.Addr)
	}

	m.RIP = next
	return false, nil
}

// mulS128 returns the high and low halves of the full 128-bit signed product.
func mulS128(a, b int64) (hi, lo int64) {
	uhi, ulo := bits.Mul64(uint64(a), uint64(b))
	shi := int64(uhi)
	if a < 0 {
		shi -= b
	}
	if b < 0 {
		shi -= a
	}
	return shi, int64(ulo)
}

// Run steps the machine until the syscall handler requests exit, an error
// occurs, or maxSteps instructions have executed.
func (m *Machine) Run(maxSteps uint64) error {
	for i := uint64(0); i < maxSteps; i++ {
		exit, err := m.Step()
		if err != nil {
			return err
		}
		if exit {
			return nil
		}
	}
	return ErrStepLimit
}
