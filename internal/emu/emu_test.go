package emu

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"

	"github.com/nofreelunch/gadget-planner/internal/asm"
	"github.com/nofreelunch/gadget-planner/internal/isa"
)

// runAsm assembles src at base, runs it until exit, and returns machine+OS.
func runAsm(t *testing.T, src string, base uint64) (*Machine, *OS) {
	t.Helper()
	r, err := asm.Assemble(src, base)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := NewMachine()
	os := NewOS()
	m.OS = os
	m.Mem.Map(base, uint64(len(r.Code)), PermRead|PermExec)
	m.Mem.WriteBytesForce(base, r.Code, PermRead|PermExec)
	m.SetupStack(0x7FFF_0000, 0x10000)
	m.RIP = base
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, os
}

const exitTail = `
    mov rdi, rax
    mov rax, 60
    syscall
`

func TestArithmeticPrograms(t *testing.T) {
	tests := []struct {
		name string
		body string
		want uint64 // exit code
	}{
		{"add", "mov rax, 2; add rax, 40", 42},
		{"sub", "mov rax, 50; sub rax, 8", 42},
		{"imul", "mov rax, 6; mov rbx, 7; imul rax, rbx", 42},
		{"xor-swap", "mov rax, 1; mov rbx, 41; xor rax, rbx; xor rbx, rax; xor rax, rbx; add rax, rbx", 42},
		{"shl", "mov rax, 21; shl rax, 1", 42},
		{"sar-negative", "mov rax, -84; sar rax, 1; neg rax", 42},
		{"not-neg", "mov rax, 41; not rax; neg rax", 42},
		{"inc-dec", "mov rax, 42; inc rax; dec rax", 42},
		{"lea-math", "mov rbx, 10; lea rax, [rbx+rbx*4-8]", 42},
		{"div", "mov rax, 126; cqo; mov rbx, 3; idiv rbx", 42},
		{"mod", "mov rax, 142; cqo; mov rbx, 100; idiv rbx; mov rax, rdx", 42},
		{"movzx", "mov rax, 0x1234512A; movzx rax, al; sub rax, 0x100 ; add rax, 0x100", 0x2A},
		{"cmov-via-setcc", "mov rbx, 5; cmp rbx, 5; sete al; movzx rax, al; mov rcx, 42; imul rax, rcx", 42},
		{"32bit-zeroext", "mov rax, -1; mov eax, 42", 42},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, os := runAsm(t, tt.body+exitTail, 0x401000)
			if os.ExitCode != tt.want {
				t.Errorf("exit = %d, want %d", os.ExitCode, tt.want)
			}
		})
	}
}

func TestControlFlow(t *testing.T) {
	src := `
    mov rax, 0
    mov rcx, 10
loop:
    add rax, rcx
    dec rcx
    jnz loop
` + exitTail
	_, os := runAsm(t, src, 0x401000)
	if os.ExitCode != 55 {
		t.Errorf("sum 1..10 = %d, want 55", os.ExitCode)
	}
}

func TestSignedVsUnsignedBranches(t *testing.T) {
	// -1 < 1 signed, but -1 > 1 unsigned.
	src := `
    mov rax, 0
    mov rbx, -1
    cmp rbx, 1
    jl signed_less
    jmp done
signed_less:
    add rax, 1
    cmp rbx, 1
    ja unsigned_above
    jmp done
unsigned_above:
    add rax, 2
done:
` + exitTail
	_, os := runAsm(t, src, 0x401000)
	if os.ExitCode != 3 {
		t.Errorf("exit = %d, want 3", os.ExitCode)
	}
}

func TestCallRetAndStack(t *testing.T) {
	src := `
    mov rdi, 40
    call addtwo
` + exitTail + `
addtwo:
    push rbp
    mov rbp, rsp
    lea rax, [rdi+2]
    pop rbp
    ret
`
	_, os := runAsm(t, src, 0x401000)
	if os.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", os.ExitCode)
	}
}

func TestWriteSyscallCapturesStdout(t *testing.T) {
	src := `
    mov rax, 1
    mov rdi, 1
    movabs rsi, msg
    mov rdx, 5
    syscall
    mov rax, 60
    mov rdi, 0
    syscall
msg: .asciz "hello"
`
	_, os := runAsm(t, src, 0x401000)
	if got := os.Stdout.String(); got != "hello" {
		t.Errorf("stdout = %q", got)
	}
}

func TestMemoryFaults(t *testing.T) {
	m := NewMachine()
	m.OS = NewOS()
	// Execute unmapped memory.
	m.RIP = 0xdead000
	if _, err := m.Step(); err == nil {
		t.Error("exec of unmapped memory succeeded")
	}
	var mf *MemFault
	_, err := m.Step()
	if !errors.As(err, &mf) || mf.Op != "exec" {
		t.Errorf("want exec fault, got %v", err)
	}
	// Write to read-only page.
	m.Mem.Map(0x1000, PageSize, PermRead)
	if err := m.Mem.WriteBytes(0x1000, []byte{1}); err == nil {
		t.Error("write to read-only page succeeded")
	}
	// Read from write-only page (no read bit).
	m.Mem.Map(0x2000, PageSize, PermWrite)
	if _, err := m.Mem.ReadBytes(0x2000, 1); err == nil {
		t.Error("read from non-readable page succeeded")
	}
}

func TestMprotectEnablesExecution(t *testing.T) {
	// Write code into an RW page, mprotect it RX, jump to it.
	src := `
    # copy "mov rax, 60; mov rdi, 7; syscall" into the data page? simpler:
    mov rax, 10          # mprotect
    movabs rdi, 0x90000
    mov rsi, 0x1000
    mov rdx, 5           # PROT_READ|PROT_EXEC
    syscall
    movabs rax, 0x90000
    jmp rax
`
	r, err := asm.Assemble(src, 0x401000)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := asm.Assemble("mov rax, 60; mov rdi, 7; syscall", 0x90000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	os := NewOS()
	m.OS = os
	m.Mem.Map(0x401000, uint64(len(r.Code)), PermRead|PermExec)
	m.Mem.WriteBytesForce(0x401000, r.Code, PermRead|PermExec)
	m.Mem.Map(0x90000, PageSize, PermRead|PermWrite)
	if err := m.Mem.WriteBytes(0x90000, payload.Code); err != nil {
		t.Fatal(err)
	}
	m.SetupStack(0x7FFF_0000, 0x10000)
	m.RIP = 0x401000
	if err := m.Run(1000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if os.ExitCode != 7 {
		t.Errorf("exit = %d, want 7", os.ExitCode)
	}
	if os.EventFor(SysMprotect) == nil {
		t.Error("no mprotect event recorded")
	}
}

// TestROPChainExecve is the end-to-end primitive the whole repository is
// built around: gadgets in an executable section, a payload on the stack,
// and an observed execve("/bin/sh").
func TestROPChainExecve(t *testing.T) {
	src := `
vuln:
    ret
g_pop_rax:
    pop rax
    ret
g_pop_rdi:
    pop rdi
    ret
g_pop_rsi:
    pop rsi
    ret
g_pop_rdx:
    pop rdx
    ret
g_syscall:
    syscall
`
	r, err := asm.Assemble(src, 0x401000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	os := NewOS()
	m.OS = os
	m.Mem.Map(0x401000, uint64(len(r.Code)), PermRead|PermExec)
	m.Mem.WriteBytesForce(0x401000, r.Code, PermRead|PermExec)
	m.SetupStack(0x7FFE_0000, 0x20000)
	sp := uint64(0x7FFE_0000 + 0x10000) // mid-stack so the chain has room to grow

	// Place "/bin/sh" below the chain on the stack.
	binsh := sp - 0x100
	if err := m.Mem.WriteBytes(binsh, append([]byte("/bin/sh"), 0)); err != nil {
		t.Fatal(err)
	}

	chain := []uint64{
		r.Labels["g_pop_rax"], SysExecve,
		r.Labels["g_pop_rdi"], binsh,
		r.Labels["g_pop_rsi"], 0,
		r.Labels["g_pop_rdx"], 0,
		r.Labels["g_syscall"],
	}
	buf := make([]byte, 8*len(chain))
	for i, v := range chain {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	if err := m.Mem.WriteBytes(sp, buf); err != nil {
		t.Fatal(err)
	}
	m.Regs[isa.RSP] = sp
	m.RIP = r.Labels["vuln"]

	if err := m.Run(1000); err != nil {
		t.Fatalf("run: %v", err)
	}
	ev := os.EventFor(SysExecve)
	if ev == nil {
		t.Fatal("no execve observed")
	}
	if ev.Path != "/bin/sh" {
		t.Errorf("execve path = %q", ev.Path)
	}
	if ev.Args[1] != 0 || ev.Args[2] != 0 {
		t.Errorf("execve argv/envp = %#x/%#x, want 0/0", ev.Args[1], ev.Args[2])
	}
}

// Property test: add/sub flag semantics agree with a direct model.
func TestQuickAddSubFlags(t *testing.T) {
	run := func(op isa.Op, a, b uint64) *Machine {
		m := NewMachine()
		m.Mem.Map(0x1000, PageSize, PermRead|PermExec)
		inst := isa.Inst{Op: op, Size: 8, A: isa.RegOp(isa.RAX), B: isa.RegOp(isa.RBX)}
		code, err := isa.Encode(inst, 0x1000)
		if err != nil {
			t.Fatal(err)
		}
		m.Mem.WriteBytesForce(0x1000, code, PermRead|PermExec)
		m.Regs[isa.RAX] = a
		m.Regs[isa.RBX] = b
		m.RIP = 0x1000
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	f := func(a, b uint64) bool {
		m := run(isa.OpAdd, a, b)
		r := a + b
		if m.Regs[isa.RAX] != r {
			return false
		}
		if m.ZF != (r == 0) || m.SF != (int64(r) < 0) || m.CF != (r < a) {
			return false
		}
		wantOF := (int64(a) >= 0) == (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0)
		if m.OF != wantOF {
			return false
		}

		m2 := run(isa.OpSub, a, b)
		r2 := a - b
		if m2.Regs[isa.RAX] != r2 || m2.CF != (a < b) || m2.ZF != (r2 == 0) {
			return false
		}
		wantOF2 := (int64(a) >= 0) != (int64(b) >= 0) && (int64(r2) >= 0) != (int64(a) >= 0)
		return m2.OF == wantOF2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property test: every condition code agrees with the signed/unsigned
// comparison it encodes, after a cmp.
func TestQuickCompareConditions(t *testing.T) {
	f := func(a, b int64) bool {
		src := "cmp rax, rbx; ret"
		r, err := asm.Assemble(src, 0x1000)
		if err != nil {
			return false
		}
		m := NewMachine()
		m.Mem.Map(0x1000, PageSize, PermRead|PermExec)
		m.Mem.WriteBytesForce(0x1000, r.Code, PermRead|PermExec)
		m.SetupStack(0x7FFF0000, 0x1000)
		m.Regs[isa.RAX] = uint64(a)
		m.Regs[isa.RBX] = uint64(b)
		m.RIP = 0x1000
		if _, err := m.Step(); err != nil {
			return false
		}
		checks := []struct {
			c    isa.Cond
			want bool
		}{
			{isa.CondE, a == b},
			{isa.CondNE, a != b},
			{isa.CondL, a < b},
			{isa.CondGE, a >= b},
			{isa.CondLE, a <= b},
			{isa.CondG, a > b},
			{isa.CondB, uint64(a) < uint64(b)},
			{isa.CondAE, uint64(a) >= uint64(b)},
			{isa.CondBE, uint64(a) <= uint64(b)},
			{isa.CondA, uint64(a) > uint64(b)},
		}
		for _, ch := range checks {
			if m.condHolds(ch.c) != ch.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStepLimit(t *testing.T) {
	r, err := asm.Assemble("self: jmp self", 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	m.OS = NewOS()
	m.Mem.Map(0x1000, uint64(len(r.Code)), PermRead|PermExec)
	m.Mem.WriteBytesForce(0x1000, r.Code, PermRead|PermExec)
	m.RIP = 0x1000
	if err := m.Run(100); !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want step limit", err)
	}
	if m.Steps != 100 {
		t.Errorf("steps = %d", m.Steps)
	}
}

func TestDivErrors(t *testing.T) {
	_, err := asmRunErr(t, "mov rax, 1; cqo; mov rbx, 0; idiv rbx")
	if !errors.Is(err, ErrDivByZero) {
		t.Errorf("err = %v, want div by zero", err)
	}
}

func asmRunErr(t *testing.T, src string) (*Machine, error) {
	t.Helper()
	r, err := asm.Assemble(src, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	m.OS = NewOS()
	m.Mem.Map(0x1000, uint64(len(r.Code)), PermRead|PermExec)
	m.Mem.WriteBytesForce(0x1000, r.Code, PermRead|PermExec)
	m.SetupStack(0x7FFF0000, 0x1000)
	m.RIP = 0x1000
	return m, m.Run(1000)
}

func TestMemoryReadWriteSizes(t *testing.T) {
	m := NewMemory()
	m.Map(0x1000, PageSize, PermRead|PermWrite)
	for _, size := range []int{1, 2, 4, 8} {
		v := uint64(0x1122334455667788) & (1<<(8*size) - 1)
		if err := m.Write(0x1100, v, size); err != nil {
			t.Fatal(err)
		}
		got, err := m.Read(0x1100, size)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("size %d: got %#x, want %#x", size, got, v)
		}
	}
	// Cross-page write and read.
	m.Map(0x2000, 2*PageSize, PermRead|PermWrite)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := m.WriteBytes(0x2FFC, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBytes(0x2FFC, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("cross-page data mismatch: %v", got)
		}
	}
}
