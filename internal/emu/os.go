package emu

import (
	"bytes"
)

// Linux x86-64 syscall numbers used by the toolchain and by attack goals.
const (
	SysRead     = 0
	SysWrite    = 1
	SysMmap     = 9
	SysMprotect = 10
	SysMremap   = 25
	SysGetpid   = 39
	SysExecve   = 59
	SysExit     = 60
	SysExitGrp  = 231
)

// SyscallEvent records one syscall observed by the OS model.
type SyscallEvent struct {
	Num  uint64
	Args [6]uint64
	Path string // resolved first-argument string for execve
}

// OS is the default syscall handler: a tiny Linux model sufficient to run
// the MiniC runtime and to observe attack payloads firing.
//
// A successful execve stops execution with exit=true, mirroring the real
// system where the victim image is replaced; mprotect and mmap are applied
// to the emulated address space and recorded.
type OS struct {
	Stdout   bytes.Buffer
	Stdin    bytes.Reader
	ExitCode uint64
	Exited   bool
	Events   []SyscallEvent

	// StopOnExecve makes a successful execve terminate the run (default
	// behaviour for exploit verification).
	StopOnExecve bool

	mmapNext uint64
}

// NewOS returns an OS model with execve-stop enabled.
func NewOS() *OS {
	return &OS{StopOnExecve: true, mmapNext: 0x7000_0000}
}

// LastEvent returns the most recent syscall event, or nil.
func (o *OS) LastEvent() *SyscallEvent {
	if len(o.Events) == 0 {
		return nil
	}
	return &o.Events[len(o.Events)-1]
}

// EventFor returns the first recorded event with the given syscall number.
func (o *OS) EventFor(num uint64) *SyscallEvent {
	for i := range o.Events {
		if o.Events[i].Num == num {
			return &o.Events[i]
		}
	}
	return nil
}

var _ SyscallHandler = (*OS)(nil)

// Syscall implements SyscallHandler. Register conventions come from the
// machine's backend ABI; syscall numbers use the x86-64 Linux numbering on
// every backend (the RISC-V toolchain emits the same numbers, keeping goal
// definitions and the OS model ISA-independent).
func (o *OS) Syscall(m *Machine) (bool, error) {
	abi := m.SyscallABI()
	num := m.Regs[abi.Num]
	ev := SyscallEvent{Num: num}
	for i, r := range abi.Args {
		if i >= len(ev.Args) {
			break
		}
		ev.Args[i] = m.Regs[r]
	}

	switch num {
	case SysWrite:
		fd, buf, n := ev.Args[0], ev.Args[1], ev.Args[2]
		data, err := m.Mem.ReadBytes(buf, int(n))
		if err != nil {
			m.Regs[abi.Ret] = uint64(^uint64(13) + 1) // -EACCES
			break
		}
		if fd == 1 || fd == 2 {
			o.Stdout.Write(data)
		}
		m.Regs[abi.Ret] = n

	case SysRead:
		buf, n := ev.Args[1], ev.Args[2]
		tmp := make([]byte, n)
		read, _ := o.Stdin.Read(tmp)
		if read > 0 {
			if err := m.Mem.WriteBytes(buf, tmp[:read]); err != nil {
				m.Regs[abi.Ret] = uint64(^uint64(13) + 1)
				break
			}
		}
		m.Regs[abi.Ret] = uint64(read)

	case SysMmap:
		length, prot := ev.Args[1], ev.Args[2]
		addr := ev.Args[0]
		if addr == 0 {
			addr = o.mmapNext
			o.mmapNext += (length + PageSize) &^ (PageSize - 1)
		}
		m.Mem.Map(addr, length, protToPerm(prot))
		m.Regs[abi.Ret] = addr

	case SysMprotect:
		addr, length, prot := ev.Args[0], ev.Args[1], ev.Args[2]
		if m.Mem.Protect(addr, length, protToPerm(prot)) {
			m.Regs[abi.Ret] = 0
		} else {
			m.Regs[abi.Ret] = uint64(^uint64(12) + 1) // -ENOMEM
		}

	case SysMremap:
		m.Regs[abi.Ret] = ev.Args[0]

	case SysGetpid:
		m.Regs[abi.Ret] = 4242

	case SysExecve:
		if path, err := m.Mem.ReadCString(ev.Args[0], 256); err == nil {
			ev.Path = path
		}
		o.Events = append(o.Events, ev)
		if o.StopOnExecve {
			o.Exited = true
			return true, nil
		}
		m.Regs[abi.Ret] = 0
		return false, nil

	case SysExit, SysExitGrp:
		o.ExitCode = ev.Args[0]
		o.Exited = true
		o.Events = append(o.Events, ev)
		return true, nil

	default:
		m.Regs[abi.Ret] = uint64(^uint64(38) + 1) // -ENOSYS
	}

	o.Events = append(o.Events, ev)
	return false, nil
}

func protToPerm(prot uint64) Perm {
	var p Perm
	if prot&1 != 0 {
		p |= PermRead
	}
	if prot&2 != 0 {
		p |= PermWrite
	}
	if prot&4 != 0 {
		p |= PermExec
	}
	return p
}
