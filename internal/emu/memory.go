// Package emu implements a concrete x86-64 emulator for the isa subset.
// It executes SBF binaries, enforces page permissions, and exposes syscall
// hooks, which lets generated code-reuse payloads be validated end-to-end:
// inject the payload, run the victim, observe the execve.
package emu

import (
	"fmt"

	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// PageSize is the emulator's memory page granularity.
const PageSize = 4096

// Perm is a page permission bitmask (same bit meanings as sbf.SectionFlags).
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// MemFault describes an invalid memory access.
type MemFault struct {
	Addr uint64
	Op   string // "read", "write", "exec"
}

func (e *MemFault) Error() string {
	return fmt.Sprintf("emu: %s fault at %#x", e.Op, e.Addr)
}

type page struct {
	data [PageSize]byte
	perm Perm
}

// Memory is a sparse, paged address space.
type Memory struct {
	pages map[uint64]*page

	// One-entry page cache: the interpreter's memory traffic is heavily
	// concentrated (current stack page, current code page).
	lastNum uint64
	last    *page

	// codeGen increments whenever executable bytes are written, so decoded-
	// instruction caches can invalidate (self-modifying code).
	codeGen uint64
}

// CodeGeneration reports the current code-modification epoch.
func (m *Memory) CodeGeneration() uint64 { return m.codeGen }

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// Map creates (or re-permissions) pages covering [addr, addr+size).
func (m *Memory) Map(addr, size uint64, perm Perm) {
	first := addr / PageSize
	last := (addr + size + PageSize - 1) / PageSize
	for p := first; p < last; p++ {
		pg, ok := m.pages[p]
		if !ok {
			pg = &page{}
			m.pages[p] = pg
		}
		pg.perm = perm
	}
}

// Protect changes permissions on pages covering [addr, addr+size) that are
// already mapped. It reports whether every page in the range was mapped.
func (m *Memory) Protect(addr, size uint64, perm Perm) bool {
	first := addr / PageSize
	last := (addr + size + PageSize - 1) / PageSize
	ok := true
	for p := first; p < last; p++ {
		pg, mapped := m.pages[p]
		if !mapped {
			ok = false
			continue
		}
		pg.perm = perm
	}
	return ok
}

// PermAt returns the permissions of the page containing addr.
func (m *Memory) PermAt(addr uint64) Perm {
	pg, ok := m.pages[addr/PageSize]
	if !ok {
		return 0
	}
	return pg.perm
}

func (m *Memory) pageFor(addr uint64, need Perm, op string) (*page, error) {
	num := addr / PageSize
	pg := m.last
	if pg == nil || m.lastNum != num {
		var ok bool
		pg, ok = m.pages[num]
		if !ok {
			return nil, &MemFault{Addr: addr, Op: op}
		}
		m.lastNum, m.last = num, pg
	}
	if pg.perm&need != need {
		return nil, &MemFault{Addr: addr, Op: op}
	}
	return pg, nil
}

// ReadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) ReadBytes(addr uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := 0; i < n; {
		pg, err := m.pageFor(addr+uint64(i), PermRead, "read")
		if err != nil {
			return nil, err
		}
		off := int((addr + uint64(i)) % PageSize)
		c := copy(out[i:], pg.data[off:])
		i += c
	}
	return out, nil
}

// WriteBytes stores data starting at addr.
func (m *Memory) WriteBytes(addr uint64, data []byte) error {
	for i := 0; i < len(data); {
		pg, err := m.pageFor(addr+uint64(i), PermWrite, "write")
		if err != nil {
			return err
		}
		if pg.perm&PermExec != 0 {
			m.codeGen++
		}
		off := int((addr + uint64(i)) % PageSize)
		c := copy(pg.data[off:], data[i:])
		i += c
	}
	return nil
}

// WriteBytesForce stores data ignoring page permissions, mapping pages as
// needed. Used by loaders and by the exploit harness to model a memory-write
// vulnerability primitive.
func (m *Memory) WriteBytesForce(addr uint64, data []byte, perm Perm) {
	for i := 0; i < len(data); {
		pnum := (addr + uint64(i)) / PageSize
		pg, ok := m.pages[pnum]
		if !ok {
			pg = &page{perm: perm}
			m.pages[pnum] = pg
		}
		off := int((addr + uint64(i)) % PageSize)
		c := copy(pg.data[off:], data[i:])
		i += c
	}
}

// Read reads a little-endian value of size 1, 2, 4 or 8 bytes.
func (m *Memory) Read(addr uint64, size int) (uint64, error) {
	off := int(addr % PageSize)
	if off+size <= PageSize {
		// Fast path: the access stays inside one page.
		pg, err := m.pageFor(addr, PermRead, "read")
		if err != nil {
			return 0, err
		}
		var v uint64
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(pg.data[off+i])
		}
		return v, nil
	}
	b, err := m.ReadBytes(addr, size)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// Write stores a little-endian value of size 1, 2, 4 or 8 bytes.
func (m *Memory) Write(addr uint64, v uint64, size int) error {
	off := int(addr % PageSize)
	if off+size <= PageSize {
		pg, err := m.pageFor(addr, PermWrite, "write")
		if err != nil {
			return err
		}
		if pg.perm&PermExec != 0 {
			m.codeGen++
		}
		for i := 0; i < size; i++ {
			pg.data[off+i] = byte(v >> (8 * i))
		}
		return nil
	}
	b := make([]byte, size)
	for i := 0; i < size; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return m.WriteBytes(addr, b)
}

// FetchWindow returns up to n readable+executable bytes at addr for the
// instruction decoder.
func (m *Memory) FetchWindow(addr uint64, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		pg, err := m.pageFor(addr+uint64(i), PermExec, "exec")
		if err != nil {
			if i == 0 {
				return nil, err
			}
			break
		}
		out = append(out, pg.data[(addr+uint64(i))%PageSize])
	}
	return out, nil
}

// ReadCString reads a NUL-terminated string of at most max bytes.
func (m *Memory) ReadCString(addr uint64, max int) (string, error) {
	var out []byte
	for i := 0; i < max; i++ {
		b, err := m.ReadBytes(addr+uint64(i), 1)
		if err != nil {
			return "", err
		}
		if b[0] == 0 {
			return string(out), nil
		}
		out = append(out, b[0])
	}
	return string(out), nil
}

// LoadBinary maps every section of an SBF image into memory.
func (m *Memory) LoadBinary(b *sbf.Binary) {
	for _, s := range b.Sections {
		perm := Perm(0)
		if s.Flags&sbf.FlagRead != 0 {
			perm |= PermRead
		}
		if s.Flags&sbf.FlagWrite != 0 {
			perm |= PermWrite
		}
		if s.Flags&sbf.FlagExec != 0 {
			perm |= PermExec
		}
		m.Map(s.Addr, uint64(len(s.Data)), perm)
		m.WriteBytesForce(s.Addr, s.Data, perm)
	}
}
