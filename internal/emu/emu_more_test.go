package emu

import (
	"strings"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/asm"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

func TestMoreInstructions(t *testing.T) {
	tests := []struct {
		name string
		body string
		want uint64
	}{
		{"xchg", "mov rax, 1; mov rbx, 41; xchg rax, rbx; add rax, rbx", 42},
		{"setb-unsigned", "mov rbx, 1; cmp rbx, 2; setb al; movzx rax, al", 1},
		{"push-mem", "push 7; push qword [rsp]; pop rax; pop rbx; add rax, rbx", 14},
		{"ret-imm", "call f; jmp done; f: ret 0; done: mov rax, 9", 9},
		{"movsxd", "mov rbx, 0xFFFFFFFF; movsxd rax, ebx; neg rax", 1},
		{"sar-cl", "mov rax, -88; mov rcx, 2; sar rax, cl; neg rax", 22},
		{"shr-cl", "mov rax, 88; mov rcx, 2; shr rax, cl", 22},
		{"cqo32", "mov rax, 5; cqo; mov rax, rdx", 0},
		{"byte-store-load", "mov rbx, 0x11AA; push rbx; mov al, byte [rsp]; movzx rax, al", 0xAA},
		{"lea-rip", "lea rax, [rip+0]; sub rax, rax", 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, os := runAsm(t, tt.body+exitTail, 0x401000)
			if os.ExitCode != tt.want {
				t.Errorf("exit = %d, want %d", os.ExitCode, tt.want)
			}
		})
	}
}

func TestSelfModifyingCodeExecutes(t *testing.T) {
	// A program that patches its own instruction stream (requires RWX),
	// exercising the icache's fetch-time permission handling.
	src := `
    movabs rbx, target
    mov byte [rbx+3], 42     # patch the imm8 of "mov rdi, 0"
target:
    mov rdi, 0
    mov rax, 60
    syscall
`
	r, err := asm.Assemble(src, 0x401000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	os := NewOS()
	m.OS = os
	m.Mem.Map(0x401000, uint64(len(r.Code)), PermRead|PermWrite|PermExec)
	m.Mem.WriteBytesForce(0x401000, r.Code, PermRead|PermWrite|PermExec)
	m.SetupStack(0x7FFF0000, 0x10000)
	m.RIP = 0x401000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if os.ExitCode != 42 {
		t.Errorf("exit = %d, want 42 (patch not observed)", os.ExitCode)
	}
}

func TestSyscallEvents(t *testing.T) {
	src := `
    mov rax, 39              # getpid
    syscall
    mov rdi, rax
    mov rax, 60
    syscall
`
	_, os := runAsm2(t, src)
	if os.ExitCode != 4242 {
		t.Errorf("getpid = %d", os.ExitCode)
	}
	if os.EventFor(SysGetpid) == nil || os.LastEvent() == nil {
		t.Error("events not recorded")
	}
}

func runAsm2(t *testing.T, src string) (*Machine, *OS) {
	t.Helper()
	return runAsm(t, src, 0x401000)
}

func TestReadSyscall(t *testing.T) {
	src := `
    mov rax, 0               # read
    mov rdi, 0
    movabs rsi, 0x7FFF1000
    mov rdx, 8
    syscall
    mov rdi, rax             # bytes read
    mov rax, 60
    syscall
`
	r, err := asm.Assemble(src, 0x401000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	os := NewOS()
	os.Stdin.Reset([]byte("hello"))
	m.OS = os
	m.Mem.Map(0x401000, uint64(len(r.Code)), PermRead|PermExec)
	m.Mem.WriteBytesForce(0x401000, r.Code, PermRead|PermExec)
	m.SetupStack(0x7FFF0000, 0x10000)
	m.RIP = 0x401000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if os.ExitCode != 5 {
		t.Errorf("read returned %d", os.ExitCode)
	}
	got, _ := m.Mem.ReadBytes(0x7FFF1000, 5)
	if string(got) != "hello" {
		t.Errorf("buffer = %q", got)
	}
}

func TestMmapSyscall(t *testing.T) {
	src := `
    mov rax, 9               # mmap
    mov rdi, 0
    mov rsi, 0x2000
    mov rdx, 3               # RW
    syscall
    mov rbx, rax
    mov qword [rbx], 77      # must be writable
    mov rdi, qword [rbx]
    mov rax, 60
    syscall
`
	_, os := runAsm2(t, src)
	if os.ExitCode != 77 {
		t.Errorf("mmap page not usable: exit %d", os.ExitCode)
	}
}

func TestLoadBinaryPermissions(t *testing.T) {
	bin := sbf.New()
	bin.AddSection(sbf.Section{Name: ".text", Addr: 0x1000, Flags: sbf.FlagRead | sbf.FlagExec, Data: []byte{0xC3}})
	bin.AddSection(sbf.Section{Name: ".data", Addr: 0x2000, Flags: sbf.FlagRead | sbf.FlagWrite, Data: []byte{1}})
	m := NewMachine()
	m.Mem.LoadBinary(bin)
	if m.Mem.PermAt(0x1000)&PermExec == 0 {
		t.Error("text not executable")
	}
	if m.Mem.PermAt(0x2000)&PermWrite == 0 {
		t.Error("data not writable")
	}
	if err := m.Mem.WriteBytes(0x1000, []byte{0}); err == nil {
		t.Error("text writable")
	}
}

func TestMemFaultMessage(t *testing.T) {
	mf := &MemFault{Addr: 0x1234, Op: "write"}
	if !strings.Contains(mf.Error(), "write") || !strings.Contains(mf.Error(), "0x1234") {
		t.Errorf("fault message = %q", mf.Error())
	}
}

func TestFetchWindowAtPageEdge(t *testing.T) {
	m := NewMemory()
	m.Map(0x1000, PageSize, PermRead|PermExec)
	// Instruction bytes at the very end of the mapped page: the window must
	// truncate, not fault.
	m.WriteBytesForce(0x1000+PageSize-2, []byte{0x5F, 0xC3}, PermRead|PermExec)
	win, err := m.FetchWindow(0x1000+PageSize-2, 16)
	if err != nil || len(win) != 2 {
		t.Errorf("window = %d bytes, %v", len(win), err)
	}
	inst, err := isa.Decode(win, 0)
	if err != nil || inst.Op != isa.OpPop {
		t.Errorf("decode at edge: %v %v", inst, err)
	}
}
