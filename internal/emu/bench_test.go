package emu

import (
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/asm"
)

// BenchmarkStepLoop measures raw interpretation speed on a tight loop.
func BenchmarkStepLoop(b *testing.B) {
	src := `
    mov rcx, 1000
loop:
    add rax, rcx
    xor rax, 0x5A5A
    dec rcx
    jnz loop
    ret
`
	r, err := asm.Assemble(src, 0x1000)
	if err != nil {
		b.Fatal(err)
	}
	m := NewMachine()
	m.Mem.Map(0x1000, uint64(len(r.Code)), PermRead|PermExec)
	m.Mem.WriteBytesForce(0x1000, r.Code, PermRead|PermExec)
	m.SetupStack(0x7FFF0000, 0x10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RIP = 0x1000
		m.Regs[4] = 0x7FFF0000 + 0x8000 // rsp
		// Push a halting return target.
		m.Mem.Write(m.Regs[4], 0x1000+uint64(len(r.Code)), 8)
		steps := m.Steps
		for {
			if _, err := m.Step(); err != nil {
				break // ret to unmapped halts the loop
			}
			if m.Steps-steps > 100_000 {
				b.Fatal("runaway")
			}
		}
	}
	b.ReportMetric(float64(m.Steps)/float64(b.N), "steps/op")
}

// BenchmarkMemoryAccess measures the paged-memory fast path.
func BenchmarkMemoryAccess(b *testing.B) {
	m := NewMemory()
	m.Map(0x10000, 16*PageSize, PermRead|PermWrite)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := 0x10000 + uint64(i%1000)*8
		if err := m.Write(addr, uint64(i), 8); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Read(addr, 8); err != nil {
			b.Fatal(err)
		}
	}
}
