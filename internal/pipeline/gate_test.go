package pipeline

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGateBoundsConcurrency pins the gate contract: at most `limit`
// computations of one stage run simultaneously, everything else queues,
// and every request is eventually admitted.
func TestGateBoundsConcurrency(t *testing.T) {
	const limit, requests = 3, 24
	s := NewStore().WithGate(NewGate(limit, nil))

	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := Do(s, StageExtract, fmt.Sprintf("gate-test-%d", i), func() (int, error) {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				defer cur.Add(-1)
				return i, nil
			})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	if p := peak.Load(); p > limit {
		t.Fatalf("peak concurrent computes %d exceeds gate limit %d", p, limit)
	}
	gs := s.Gate().Stats()
	var extract *GateStats
	for i := range gs {
		if gs[i].Stage == "extract" {
			extract = &gs[i]
		}
	}
	if extract == nil {
		t.Fatal("no extract gate stats")
	}
	if extract.Admitted != requests {
		t.Fatalf("admitted = %d, want %d", extract.Admitted, requests)
	}
	if extract.InFlight != 0 || extract.Queued != 0 {
		t.Fatalf("gate not drained: inflight=%d queued=%d", extract.InFlight, extract.Queued)
	}
}

// TestGateSingleflight: concurrent requests for one key still compute once
// and take only one slot.
func TestGateSingleflight(t *testing.T) {
	s := NewStore().WithGate(NewGate(1, nil))
	var computes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := Do(s, StagePlan, "shared-key", func() (int, error) {
				computes.Add(1)
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("got %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	gs := s.Gate().Stats()
	for _, g := range gs {
		if g.Stage == "plan" && g.Admitted != 1 {
			t.Fatalf("plan admissions = %d, want 1 (singleflight)", g.Admitted)
		}
	}
}

// TestDoCtxCanceled: a canceled context skips the stage without computing
// or caching anything — a later request with a live context computes
// normally (cancellation errors are never cached as artifacts).
func TestDoCtxCanceled(t *testing.T) {
	s := NewStore()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	ran := false
	_, _, err := DoCtx(ctx, s, StageExtract, "ctx-key", func() (int, error) {
		ran = true
		return 1, nil
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("compute ran despite canceled context")
	}

	v, info, err := DoCtx(context.Background(), s, StageExtract, "ctx-key", func() (int, error) {
		return 2, nil
	})
	if err != nil || v != 2 {
		t.Fatalf("got %d, %v after cancellation, want fresh compute", v, err)
	}
	if info.Hit {
		t.Fatal("canceled request must not have populated the store")
	}
}

// TestGateDisabledStore: the gate also bounds the -nocache arm (a server
// may serve with caching off for A/B runs; its pools must still hold).
func TestGateDisabledStore(t *testing.T) {
	s := NewDisabledStore().WithGate(NewGate(2, nil))
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			Do(s, StageBuild, fmt.Sprintf("k%d", i), func() (int, error) {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				defer cur.Add(-1)
				return 0, nil
			})
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak %d exceeds limit 2 on disabled store", p)
	}
}
