package pipeline

import (
	"strings"
	"testing"
	"time"
)

// TestWallBuckets pins the uncached-time accounting: stops accumulate into
// named buckets, stats render sorted by time, and Reset clears them.
func TestWallBuckets(t *testing.T) {
	ResetWall()
	defer ResetWall()

	stop := TrackWall("alpha")
	time.Sleep(2 * time.Millisecond)
	stop()
	for i := 0; i < 3; i++ {
		TrackWall("beta")()
	}

	stats := WallStats()
	if len(stats) != 2 {
		t.Fatalf("buckets = %d, want 2", len(stats))
	}
	if stats[0].Name != "alpha" || stats[0].Count != 1 || stats[0].Seconds <= 0 {
		t.Errorf("alpha bucket = %+v", stats[0])
	}
	if stats[1].Name != "beta" || stats[1].Count != 3 {
		t.Errorf("beta bucket = %+v", stats[1])
	}

	line := WallLine()
	if !strings.Contains(line, "alpha=") || !strings.Contains(line, "beta=") {
		t.Errorf("WallLine missing buckets: %q", line)
	}
	if ai, bi := strings.Index(line, "alpha="), strings.Index(line, "beta="); ai > bi {
		t.Errorf("buckets not sorted by time: %q", line)
	}

	ResetWall()
	if got := WallStats(); len(got) != 0 {
		t.Errorf("buckets after reset = %d, want 0", len(got))
	}
	if line := WallLine(); !strings.Contains(line, "no tracked regions") {
		t.Errorf("empty WallLine = %q", line)
	}
}
