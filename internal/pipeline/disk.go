package pipeline

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Disk is the store's persistent tier: stage artifacts serialized by
// codec.go into content-addressed files that outlive the process, so a cold
// store in a new process is served by an earlier process's computations.
//
// Layout: <dir>/<stage>/<sha256(key)[:16] hex>.art. The full artifact key is
// stored (and verified) inside the file, so a truncated hash collision reads
// as a miss rather than the wrong artifact. Invalidation is purely by
// fingerprint: keys chain every input that determines an artifact, so a
// changed input addresses a different file and stale entries simply age out
// under the LRU budget.
//
// Crash- and concurrency-safety: writers materialize into a private
// .tmp.<pid> file and atomically rename it over the final path; concurrent
// same-key writers (other goroutines, other processes) are serialized by an
// O_EXCL .claim file — losers skip the write, since the winner is persisting
// the identical deterministic bytes. Readers validate a whole-file SHA-256
// trailer; corrupt or truncated artifacts are deleted and degrade to a
// cache miss, never an error. Claims and temp files orphaned by a crash are
// swept once they exceed a staleness TTL.
type Disk struct {
	dir      string
	maxBytes int64

	// size is this handle's running estimate of total artifact bytes; the
	// evictor rescans the directory, so cross-process drift self-corrects.
	size    atomic.Int64
	evictMu sync.Mutex

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	evictions    atomic.Int64
	evictedBytes atomic.Int64
	corrupt      atomic.Int64
	writeSkips   atomic.Int64
}

// DiskOptions configures the persistent tier.
type DiskOptions struct {
	// MaxBytes is the size budget the LRU evictor enforces after writes.
	// 0 means DefaultDiskBudget; negative means unbounded.
	MaxBytes int64
}

const (
	// DefaultDiskBudget is the cache-size budget when DiskOptions.MaxBytes
	// is zero.
	DefaultDiskBudget = 1 << 30 // 1 GiB

	diskMagic   = "GPA2"
	artSuffix   = ".art"
	claimSuffix = ".claim"

	// staleTTL is how old an orphaned claim or temp file must be before
	// another writer may break it (a crashed writer's leftovers).
	staleTTL = 5 * time.Minute
)

// OpenDisk opens (creating if needed) a persistent artifact cache rooted at
// dir. Multiple Disk handles — in one process or many — may share a
// directory concurrently.
func OpenDisk(dir string, o DiskOptions) (*Disk, error) {
	if dir == "" {
		return nil, errors.New("pipeline: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: open disk cache: %w", err)
	}
	d := &Disk{dir: dir, maxBytes: o.MaxBytes}
	if d.maxBytes == 0 {
		d.maxBytes = DefaultDiskBudget
	}
	d.size.Store(d.scan(nil))
	return d, nil
}

// Dir returns the cache directory.
func (d *Disk) Dir() string { return d.dir }

// DiskStats snapshots the disk tier's counters (the BENCH_DISK.json "disk"
// block). Byte counts are whole artifact files, header and checksum
// included.
type DiskStats struct {
	Dir          string `json:"dir,omitempty"`
	MaxBytes     int64  `json:"max_bytes"`
	SizeBytes    int64  `json:"size_bytes"`
	BytesRead    int64  `json:"bytes_read"`
	BytesWritten int64  `json:"bytes_written"`
	Evictions    int64  `json:"evictions"`
	EvictedBytes int64  `json:"evicted_bytes"`
	Corrupt      int64  `json:"corrupt"`
	WriteSkips   int64  `json:"write_skips"`
}

// Stats snapshots the tier's counters. Nil-safe.
func (d *Disk) Stats() DiskStats {
	if d == nil {
		return DiskStats{}
	}
	return DiskStats{
		Dir:          d.dir,
		MaxBytes:     d.maxBytes,
		SizeBytes:    d.size.Load(),
		BytesRead:    d.bytesRead.Load(),
		BytesWritten: d.bytesWritten.Load(),
		Evictions:    d.evictions.Load(),
		EvictedBytes: d.evictedBytes.Load(),
		Corrupt:      d.corrupt.Load(),
		WriteSkips:   d.writeSkips.Load(),
	}
}

func (d *Disk) path(st Stage, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, st.String(), hex.EncodeToString(sum[:16])+artSuffix)
}

// diskMeta is the persisted compute-cost header, so a disk hit reports the
// original computation's cost exactly like an in-memory hit does.
type diskMeta struct {
	compute time.Duration
	alloc   uint64
}

// get reads, validates, and returns the payload for key. Any failure — no
// file, bad checksum, header mismatch — is a miss; invalid files are
// deleted so they cannot fail again. A hit refreshes the file's mtime,
// which is the LRU recency signal.
func (d *Disk) get(st Stage, key string) ([]byte, diskMeta, bool) {
	p := d.path(st, key)
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, diskMeta{}, false
	}
	payload, meta, perr := parseArtifactFile(data, st, key)
	if perr != nil {
		d.corrupt.Add(1)
		if os.Remove(p) == nil {
			d.size.Add(-int64(len(data)))
		}
		return nil, diskMeta{}, false
	}
	d.bytesRead.Add(int64(len(data)))
	now := time.Now()
	os.Chtimes(p, now, now) // best-effort LRU touch
	return payload, meta, true
}

// discard removes key's artifact (it decoded as garbage despite a valid
// checksum: version skew or a codec bug) and counts it corrupt.
func (d *Disk) discard(st Stage, key string) {
	d.corrupt.Add(1)
	p := d.path(st, key)
	if fi, err := os.Stat(p); err == nil {
		if os.Remove(p) == nil {
			d.size.Add(-fi.Size())
		}
	}
}

// put persists an artifact. Best-effort by design: every failure path just
// skips the write — the artifact stays in memory and can be recomputed by
// the next process.
func (d *Disk) put(st Stage, key string, payload []byte, meta diskMeta) {
	p := d.path(st, key)
	if _, err := os.Stat(p); err == nil {
		// Another writer (this run or an earlier one) already persisted
		// these bytes.
		d.writeSkips.Add(1)
		return
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return
	}
	claim := p + claimSuffix
	if !d.claim(claim) {
		d.writeSkips.Add(1)
		return
	}
	defer os.Remove(claim)
	data := buildArtifactFile(st, key, payload, meta)
	tmp := fmt.Sprintf("%s.tmp.%d", p, os.Getpid())
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return
	}
	d.bytesWritten.Add(int64(len(data)))
	if d.size.Add(int64(len(data))) > d.maxBytes && d.maxBytes > 0 {
		d.evict()
	}
}

// claim takes the per-key write claim via O_EXCL creation. An existing
// claim older than staleTTL belongs to a crashed writer and is broken.
func (d *Disk) claim(path string) bool {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err == nil {
		f.Close()
		return true
	}
	if !errors.Is(err, os.ErrExist) {
		return false
	}
	if fi, serr := os.Stat(path); serr == nil && time.Since(fi.ModTime()) > staleTTL {
		os.Remove(path)
		if f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644); err == nil {
			f.Close()
			return true
		}
	}
	return false
}

type artFile struct {
	path  string
	size  int64
	mtime time.Time
}

// scan walks the stage directories, appending every artifact to *files (if
// non-nil), sweeping stale temp/claim litter, and returning the total
// artifact bytes on disk.
func (d *Disk) scan(files *[]artFile) int64 {
	var total int64
	for st := Stage(0); st < numStages; st++ {
		dir := filepath.Join(d.dir, st.String())
		ents, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, ent := range ents {
			fi, err := ent.Info()
			if err != nil {
				continue
			}
			full := filepath.Join(dir, ent.Name())
			switch {
			case strings.HasSuffix(ent.Name(), artSuffix):
				total += fi.Size()
				if files != nil {
					*files = append(*files, artFile{path: full, size: fi.Size(), mtime: fi.ModTime()})
				}
			default:
				// .claim or .tmp.<pid> leftovers from a crashed writer.
				if time.Since(fi.ModTime()) > staleTTL {
					os.Remove(full)
				}
			}
		}
	}
	return total
}

// evict enforces the size budget: rescan (correcting for writers in other
// processes), then remove least-recently-used artifacts until under budget.
// Removing a file another process is about to read is safe — it simply
// recomputes and may re-persist.
func (d *Disk) evict() {
	d.evictMu.Lock()
	defer d.evictMu.Unlock()
	var files []artFile
	total := d.scan(&files)
	if total <= d.maxBytes {
		d.size.Store(total)
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].path < files[j].path
	})
	for _, f := range files {
		if total <= d.maxBytes {
			break
		}
		if os.Remove(f.path) != nil {
			continue
		}
		total -= f.size
		d.evictions.Add(1)
		d.evictedBytes.Add(f.size)
	}
	d.size.Store(total)
}

// buildArtifactFile frames a payload for disk: magic, stage, full key,
// compute-cost header, payload, SHA-256 trailer over everything before it.
func buildArtifactFile(st Stage, key string, payload []byte, meta diskMeta) []byte {
	e := &enc{buf: make([]byte, 0, len(diskMagic)+len(key)+len(payload)+64)}
	e.buf = append(e.buf, diskMagic...)
	e.u8(uint8(st))
	e.str(key)
	e.uv(uint64(meta.compute))
	e.uv(meta.alloc)
	e.bytes(payload)
	sum := sha256.Sum256(e.buf)
	e.buf = append(e.buf, sum[:]...)
	return e.buf
}

// parseArtifactFile validates the frame and returns the payload. The stage
// and key must match the request, so a renamed or colliding file cannot
// serve the wrong artifact.
func parseArtifactFile(data []byte, st Stage, key string) ([]byte, diskMeta, error) {
	if len(data) < len(diskMagic)+sha256.Size {
		return nil, diskMeta{}, errCorrupt
	}
	body, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], trailer) {
		return nil, diskMeta{}, errCorrupt
	}
	if string(body[:len(diskMagic)]) != diskMagic {
		return nil, diskMeta{}, errCorrupt
	}
	d := &dec{buf: body, off: len(diskMagic)}
	if Stage(d.u8()) != st || d.str() != key {
		return nil, diskMeta{}, errCorrupt
	}
	meta := diskMeta{compute: time.Duration(d.uv()), alloc: d.uv()}
	payload := d.bytes()
	if d.bad || d.off != len(body) {
		return nil, diskMeta{}, errCorrupt
	}
	return payload, meta, nil
}
