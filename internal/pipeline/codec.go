package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/payload"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// This file is the stable binary codec for stage artifacts, the layer the
// disk tier (disk.go) stands on. Every encoder is deterministic — map keys
// are sorted, slices keep their pool/plan order — so encoding the same
// artifact twice yields identical bytes, and a re-encoded decode is
// byte-identical to the original encoding.
//
// Expression DAGs are serialized as a flat node table in dependency order
// (every argument precedes its user) and decoded by rebuilding raw nodes and
// re-interning them through expr.Importer into a fresh Builder — the same
// re-intern path gadget.ClonePool uses to merge sharded extractions, and the
// reason a decoded pool is interchangeable with a computed one: every
// consumer that plans or concretizes against a pool clones it first, and the
// clone is a pure function of pool content. Effects are traversed in the
// exact field order gadget's importEffect uses (registers, next RIP, sorted
// stack writes, memory accesses, path conditions), so the decoded builder
// interns nodes in the same sequence a native merge would.

var errCorrupt = errors.New("pipeline: corrupt artifact")

// enc is a minimal append-only encoder. All integers are varints (zigzag
// for signed); strings and byte slices are length-prefixed.
type enc struct{ buf []byte }

func (e *enc) u8(v uint8) { e.buf = append(e.buf, v) }

func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *enc) uv(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) iv(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }

func (e *enc) str(s string) {
	e.uv(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) bytes(p []byte) {
	e.uv(uint64(len(p)))
	e.buf = append(e.buf, p...)
}

// dec is the matching bounds-checked decoder. The first malformed read
// latches the bad flag; subsequent reads return zero values, and the caller
// checks once at the end. Checksums are verified before decoding, so a bad
// flag means version skew or a codec bug, and the artifact degrades to a
// cache miss.
type dec struct {
	buf []byte
	off int
	bad bool
}

func (d *dec) fail() { d.bad = true }

func (d *dec) u8() uint8 {
	if d.bad || d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *dec) bool() bool { return d.u8() == 1 }

func (d *dec) uv() uint64 {
	if d.bad {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *dec) iv() int64 {
	if d.bad {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// count reads a collection length and sanity-bounds it against the bytes
// remaining (every element costs at least one byte), so corrupt lengths
// cannot drive huge allocations.
func (d *dec) count() int {
	v := d.uv()
	if v > uint64(len(d.buf)-d.off) {
		d.fail()
		return 0
	}
	return int(v)
}

func (d *dec) take(n int) []byte {
	if d.bad || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	p := d.buf[d.off : d.off+n]
	d.off += n
	return p
}

func (d *dec) str() string { return string(d.take(d.count())) }

func (d *dec) bytes() []byte {
	n := d.count()
	if n == 0 {
		return nil
	}
	return append([]byte(nil), d.take(n)...)
}

// exprReg assigns table indices to expression nodes in registration order,
// arguments before users. Registration must traverse artifacts in a
// deterministic order (the encoders' field order) so the table — and hence
// the encoding — is byte-stable.
type exprReg struct {
	idx   map[*expr.Node]uint64
	nodes []*expr.Node
}

func newExprReg() *exprReg { return &exprReg{idx: make(map[*expr.Node]uint64)} }

func (r *exprReg) add(n *expr.Node) {
	if n == nil {
		return
	}
	if _, ok := r.idx[n]; ok {
		return
	}
	for _, a := range n.Args {
		r.add(a)
	}
	r.idx[n] = uint64(len(r.nodes))
	r.nodes = append(r.nodes, n)
}

// ref encodes a node reference: 0 for nil, index+1 otherwise.
func (r *exprReg) ref(n *expr.Node) uint64 {
	if n == nil {
		return 0
	}
	return r.idx[n] + 1
}

// regEffect registers an effect's nodes in importEffect's traversal order.
func (r *exprReg) regEffect(e *symex.Effect) {
	for i := range e.Regs {
		r.add(e.Regs[i])
	}
	r.add(e.NextRIP)
	for _, off := range sortedOffsets(e.StackWrites) {
		r.add(e.StackWrites[off].Val)
	}
	for _, a := range e.MemReads {
		r.add(a.Addr)
		r.add(a.Val)
	}
	for _, a := range e.MemWrites {
		r.add(a.Addr)
		r.add(a.Val)
	}
	for _, c := range e.Conds {
		r.add(c)
	}
}

// write serializes the node table. Within a node record, argument references
// are plain indices — arguments always precede their users.
func (r *exprReg) write(e *enc) {
	e.uv(uint64(len(r.nodes)))
	for _, n := range r.nodes {
		e.u8(uint8(n.Kind))
		e.u8(n.Width)
		switch n.Kind {
		case expr.KindConst:
			e.uv(n.Val)
		case expr.KindVar:
			e.str(n.Name)
		default:
			e.u8(uint8(len(n.Args)))
			for _, a := range n.Args {
				e.uv(r.idx[a])
			}
		}
	}
}

// exprTab resolves decoded node references. The raw nodes reconstruct the
// encoded structure verbatim; imp re-interns them into the artifact's fresh
// Builder at first use, in the decoders' (= encoders' = importEffect's)
// traversal order.
type exprTab struct {
	raw []*expr.Node
	imp *expr.Importer
}

func readExprTab(d *dec, b *expr.Builder) *exprTab {
	n := d.count()
	raw := make([]*expr.Node, 0, n)
	for i := 0; i < n; i++ {
		k := expr.Kind(d.u8())
		nd := &expr.Node{Kind: k, Width: d.u8()}
		switch k {
		case expr.KindConst:
			nd.Val = d.uv()
		case expr.KindVar:
			nd.Name = d.str()
		default:
			if k <= expr.KindVar || k > expr.KindBNot {
				d.fail()
				return nil
			}
			na := int(d.u8())
			if na < 1 || na > 3 {
				d.fail()
				return nil
			}
			nd.Args = make([]*expr.Node, na)
			for j := 0; j < na; j++ {
				ai := d.uv()
				if d.bad || ai >= uint64(i) {
					d.fail()
					return nil
				}
				nd.Args[j] = raw[ai]
			}
		}
		raw = append(raw, nd)
	}
	return &exprTab{raw: raw, imp: expr.NewImporter(b)}
}

// node reads one reference and imports the raw node into the builder.
func (t *exprTab) node(d *dec) *expr.Node {
	r := d.uv()
	if r == 0 {
		return nil
	}
	if t == nil || r > uint64(len(t.raw)) {
		d.fail()
		return nil
	}
	return t.imp.Import(t.raw[r-1])
}

func sortedOffsets[V any](m map[int64]V) []int64 {
	offs := make([]int64, 0, len(m))
	for off := range m {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	return offs
}

func writeEffect(e *enc, r *exprReg, eff *symex.Effect) {
	e.uv(uint64(len(eff.Regs)))
	for i := range eff.Regs {
		e.uv(r.ref(eff.Regs[i]))
	}
	e.uv(r.ref(eff.NextRIP))
	wOffs := sortedOffsets(eff.StackWrites)
	e.uv(uint64(len(wOffs)))
	for _, off := range wOffs {
		w := eff.StackWrites[off]
		e.iv(off)
		e.u8(w.Size)
		e.uv(r.ref(w.Val))
	}
	iOffs := sortedOffsets(eff.Inputs)
	e.uv(uint64(len(iOffs)))
	for _, off := range iOffs {
		e.iv(off)
		e.u8(eff.Inputs[off])
	}
	e.iv(eff.StackDelta)
	for _, accs := range [2][]symex.MemAccess{eff.MemReads, eff.MemWrites} {
		e.uv(uint64(len(accs)))
		for _, a := range accs {
			e.uv(r.ref(a.Addr))
			e.uv(r.ref(a.Val))
			e.u8(a.Size)
		}
	}
	e.uv(uint64(len(eff.Conds)))
	for _, c := range eff.Conds {
		e.uv(r.ref(c))
	}
	e.u8(uint8(eff.End))
}

func readEffect(d *dec, t *exprTab) *symex.Effect {
	eff := &symex.Effect{}
	nr := d.count()
	if nr > isa.MaxRegs {
		d.fail()
		return eff
	}
	eff.Regs = make([]*expr.Node, nr)
	for i := range eff.Regs {
		eff.Regs[i] = t.node(d)
	}
	eff.NextRIP = t.node(d)
	nw := d.count()
	eff.StackWrites = make(map[int64]symex.Write, nw)
	for i := 0; i < nw; i++ {
		off := d.iv()
		size := d.u8()
		eff.StackWrites[off] = symex.Write{Val: t.node(d), Size: size}
	}
	ni := d.count()
	eff.Inputs = make(map[int64]uint8, ni)
	for i := 0; i < ni; i++ {
		off := d.iv()
		eff.Inputs[off] = d.u8()
	}
	eff.StackDelta = d.iv()
	for k := 0; k < 2; k++ {
		na := d.count()
		var accs []symex.MemAccess
		if na > 0 {
			accs = make([]symex.MemAccess, na)
			for i := range accs {
				accs[i] = symex.MemAccess{Addr: t.node(d), Val: t.node(d), Size: d.u8()}
			}
		}
		if k == 0 {
			eff.MemReads = accs
		} else {
			eff.MemWrites = accs
		}
	}
	nc := d.count()
	if nc > 0 {
		eff.Conds = make([]*expr.Node, nc)
		for i := range eff.Conds {
			eff.Conds[i] = t.node(d)
		}
	}
	eff.End = symex.EndKind(d.u8())
	return eff
}

func writeOperand(e *enc, o isa.Operand) {
	e.u8(uint8(o.Kind))
	switch o.Kind {
	case isa.KindReg:
		e.u8(uint8(o.Reg))
	case isa.KindImm:
		e.iv(o.Imm)
	case isa.KindMem:
		m := o.Mem
		e.u8(uint8(m.Base))
		e.u8(uint8(m.Index))
		e.u8(m.Scale)
		e.iv(int64(m.Disp))
		var f uint8
		if m.HasBase {
			f |= 1
		}
		if m.HasIndex {
			f |= 2
		}
		if m.RIPRel {
			f |= 4
		}
		e.u8(f)
	}
}

func readOperand(d *dec) isa.Operand {
	var o isa.Operand
	o.Kind = isa.OperandKind(d.u8())
	switch o.Kind {
	case isa.KindNone:
	case isa.KindReg:
		o.Reg = isa.Reg(d.u8())
	case isa.KindImm:
		o.Imm = d.iv()
	case isa.KindMem:
		o.Mem.Base = isa.Reg(d.u8())
		o.Mem.Index = isa.Reg(d.u8())
		o.Mem.Scale = d.u8()
		o.Mem.Disp = int32(d.iv())
		f := d.u8()
		o.Mem.HasBase = f&1 != 0
		o.Mem.HasIndex = f&2 != 0
		o.Mem.RIPRel = f&4 != 0
	default:
		d.fail()
	}
	return o
}

func writeInst(e *enc, in isa.Inst) {
	e.u8(uint8(in.Op))
	e.u8(uint8(in.Cond))
	e.u8(in.Size)
	writeOperand(e, in.A)
	writeOperand(e, in.B)
	writeOperand(e, in.C)
	e.uv(in.Addr)
	e.u8(in.Len)
}

func readInst(d *dec) isa.Inst {
	var in isa.Inst
	in.Op = isa.Op(d.u8())
	in.Cond = isa.Cond(d.u8())
	in.Size = d.u8()
	in.A = readOperand(d)
	in.B = readOperand(d)
	in.C = readOperand(d)
	in.Addr = d.uv()
	in.Len = d.u8()
	return in
}

func writeGadget(e *enc, r *exprReg, g *gadget.Gadget) {
	e.uv(uint64(g.ID))
	e.uv(g.Location)
	e.uv(uint64(g.Len))
	e.u8(uint8(g.JmpType))
	e.bool(g.Merged)
	e.bool(g.HasCond)
	e.uv(uint64(len(g.Steps)))
	for _, st := range g.Steps {
		writeInst(e, st.Inst)
		e.bool(st.Taken)
	}
	writeEffect(e, r, g.Effect)
	e.uv(uint64(len(g.ClobRegs)))
	for _, reg := range g.ClobRegs {
		e.u8(uint8(reg))
	}
	e.uv(uint64(len(g.CtrlRegs)))
	for _, reg := range g.CtrlRegs {
		e.u8(uint8(reg))
	}
}

func readGadget(d *dec, t *exprTab) *gadget.Gadget {
	g := &gadget.Gadget{
		ID:       int(d.uv()),
		Location: d.uv(),
		Len:      int(d.uv()),
		JmpType:  gadget.JmpType(d.u8()),
		Merged:   d.bool(),
		HasCond:  d.bool(),
	}
	ns := d.count()
	g.Steps = make([]symex.Step, ns)
	for i := range g.Steps {
		g.Steps[i] = symex.Step{Inst: readInst(d), Taken: d.bool()}
	}
	g.Effect = readEffect(d, t)
	nc := d.count()
	if nc > 0 {
		g.ClobRegs = make([]isa.Reg, nc)
		for i := range g.ClobRegs {
			g.ClobRegs[i] = isa.Reg(d.u8())
		}
	}
	nt := d.count()
	if nt > 0 {
		g.CtrlRegs = make([]isa.Reg, nt)
		for i := range g.CtrlRegs {
			g.CtrlRegs[i] = isa.Reg(d.u8())
		}
	}
	return g
}

func writePoolStats(e *enc, s gadget.Stats) {
	e.uv(uint64(s.ScannedOffsets))
	e.uv(uint64(s.RawCandidates))
	e.uv(uint64(s.Supported))
	e.uv(uint64(s.Unsupported))
	e.uv(uint64(s.MergedGadgets))
	types := make([]gadget.JmpType, 0, len(s.ByType))
	for t := range s.ByType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	e.uv(uint64(len(types)))
	for _, t := range types {
		e.u8(uint8(t))
		e.uv(uint64(s.ByType[t]))
	}
}

func readPoolStats(d *dec) gadget.Stats {
	s := gadget.Stats{
		ScannedOffsets: int(d.uv()),
		RawCandidates:  int(d.uv()),
		Supported:      int(d.uv()),
		Unsupported:    int(d.uv()),
		MergedGadgets:  int(d.uv()),
	}
	n := d.count()
	s.ByType = make(map[gadget.JmpType]int, n)
	for i := 0; i < n; i++ {
		t := gadget.JmpType(d.u8())
		s.ByType[t] = int(d.uv())
	}
	return s
}

func writePool(e *enc, p *gadget.Pool) {
	e.str(p.ISA)
	r := newExprReg()
	for _, g := range p.Gadgets {
		r.regEffect(g.Effect)
	}
	r.write(e)
	e.uv(uint64(len(p.Gadgets)))
	for _, g := range p.Gadgets {
		writeGadget(e, r, g)
	}
	writePoolStats(e, p.Stats)
}

// readPool rebuilds the pool around a fresh builder, re-inserting each
// decoded gadget into the ByReg/Syscalls indexes exactly as extraction's
// pool insertion does.
func readPool(d *dec) *gadget.Pool {
	isaName := d.str()
	b := expr.NewBuilder()
	t := readExprTab(d, b)
	n := d.count()
	p := &gadget.Pool{Builder: b, ISA: isaName, ByReg: make(map[isa.Reg][]*gadget.Gadget)}
	for i := 0; i < n; i++ {
		if d.bad {
			return nil
		}
		g := readGadget(d, t)
		p.Gadgets = append(p.Gadgets, g)
		if g.JmpType == gadget.TypeSyscall {
			p.Syscalls = append(p.Syscalls, g)
		}
		for _, reg := range g.ClobRegs {
			p.ByReg[reg] = append(p.ByReg[reg], g)
		}
	}
	p.Stats = readPoolStats(d)
	return p
}

func writeSubsumeStats(e *enc, s subsume.Stats) {
	e.uv(uint64(s.Before))
	e.uv(uint64(s.After))
	e.uv(uint64(s.RemovedIdent))
	e.uv(uint64(s.RemovedProved))
	e.uv(uint64(s.SolverQueries))
	e.uv(uint64(s.CacheHits))
	e.uv(uint64(s.EvalRefuted))
	e.uv(uint64(s.WitnessRefuted))
	e.uv(uint64(s.Blasted))
	e.uv(uint64(s.Buckets))
}

func readSubsumeStats(d *dec) subsume.Stats {
	return subsume.Stats{
		Before:         int(d.uv()),
		After:          int(d.uv()),
		RemovedIdent:   int(d.uv()),
		RemovedProved:  int(d.uv()),
		SolverQueries:  int64(d.uv()),
		CacheHits:      int64(d.uv()),
		EvalRefuted:    int64(d.uv()),
		WitnessRefuted: int64(d.uv()),
		Blasted:        int64(d.uv()),
		Buckets:        int(d.uv()),
	}
}

func writeCount(e *enc, m map[gadget.JmpType]int) {
	types := make([]gadget.JmpType, 0, len(m))
	for t := range m {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	e.uv(uint64(len(types)))
	for _, t := range types {
		e.u8(uint8(t))
		e.uv(uint64(m[t]))
	}
}

func readCount(d *dec) map[gadget.JmpType]int {
	n := d.count()
	m := make(map[gadget.JmpType]int, n)
	for i := 0; i < n; i++ {
		t := gadget.JmpType(d.u8())
		m[t] = int(d.uv())
	}
	return m
}

func writeSpec(e *enc, s planner.ValueSpec) {
	e.u8(uint8(s.Kind))
	e.uv(s.Value)
	e.bytes(s.Data)
}

func readSpec(d *dec) planner.ValueSpec {
	return planner.ValueSpec{
		Kind:  planner.SpecKind(d.u8()),
		Value: d.uv(),
		Data:  d.bytes(),
	}
}

func writeGoal(e *enc, g planner.Goal) {
	e.str(g.Name)
	regs := make([]isa.Reg, 0, len(g.Regs))
	for r := range g.Regs {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	e.uv(uint64(len(regs)))
	for _, r := range regs {
		e.u8(uint8(r))
		writeSpec(e, g.Regs[r])
	}
}

func readGoal(d *dec) planner.Goal {
	g := planner.Goal{Name: d.str()}
	n := d.count()
	g.Regs = make(map[isa.Reg]planner.ValueSpec, n)
	for i := 0; i < n; i++ {
		r := isa.Reg(d.u8())
		g.Regs[r] = readSpec(d)
	}
	return g
}

func writePlan(e *enc, r *exprReg, gidx map[*gadget.Gadget]uint64, p *planner.Plan) {
	e.uv(uint64(len(p.Steps)))
	for _, st := range p.Steps {
		e.iv(int64(st.ID))
		if st.G == nil {
			e.uv(0)
		} else {
			e.uv(gidx[st.G] + 1)
		}
	}
	e.uv(uint64(len(p.Order)))
	for _, o := range p.Order {
		e.iv(int64(o[0]))
		e.iv(int64(o[1]))
	}
	e.uv(uint64(len(p.Links)))
	for _, l := range p.Links {
		e.iv(int64(l.Producer))
		e.iv(int64(l.Consumer))
		e.u8(uint8(l.Reg))
		writeSpec(e, l.Spec)
	}
	e.uv(uint64(len(p.Open)))
	for _, q := range p.Open {
		e.iv(int64(q.Step))
		e.u8(uint8(q.Reg))
		writeSpec(e, q.Spec)
	}
	e.uv(uint64(len(p.Demands)))
	for _, dm := range p.Demands {
		e.iv(int64(dm.Step))
		e.uv(r.ref(dm.Expr))
		writeSpec(e, dm.Spec)
	}
	e.iv(int64(p.GoalStep()))
}

func readPlan(d *dec, t *exprTab, glist []*gadget.Gadget) *planner.Plan {
	ns := d.count()
	steps := make([]planner.Step, ns)
	for i := range steps {
		steps[i].ID = int(d.iv())
		ref := d.uv()
		if ref > 0 {
			if ref > uint64(len(glist)) {
				d.fail()
				return nil
			}
			steps[i].G = glist[ref-1]
		}
	}
	no := d.count()
	order := make([][2]int, no)
	for i := range order {
		order[i] = [2]int{int(d.iv()), int(d.iv())}
	}
	nl := d.count()
	links := make([]planner.Link, nl)
	for i := range links {
		links[i] = planner.Link{
			Producer: int(d.iv()),
			Consumer: int(d.iv()),
			Reg:      isa.Reg(d.u8()),
			Spec:     readSpec(d),
		}
	}
	nq := d.count()
	var open []planner.Requirement
	if nq > 0 {
		open = make([]planner.Requirement, nq)
		for i := range open {
			open[i] = planner.Requirement{
				Step: int(d.iv()),
				Reg:  isa.Reg(d.u8()),
				Spec: readSpec(d),
			}
		}
	}
	nd := d.count()
	var demands []planner.SlotDemand
	if nd > 0 {
		demands = make([]planner.SlotDemand, nd)
		for i := range demands {
			demands[i] = planner.SlotDemand{
				Step: int(d.iv()),
				Expr: t.node(d),
				Spec: readSpec(d),
			}
		}
	}
	return planner.RestorePlan(steps, order, links, open, demands, int(d.iv()))
}

func writeResult(e *enc, r planner.Result) {
	e.uv(uint64(r.Expanded))
	e.uv(uint64(r.Generated))
	e.uv(uint64(r.Rejected))
	e.bool(r.TimedOut)
	e.uv(uint64(r.TruncatedSeeds))
	e.uv(uint64(r.Batches))
	e.uv(uint64(r.CacheHits))
	e.uv(uint64(r.CacheMisses))
}

func readResult(d *dec) planner.Result {
	return planner.Result{
		Expanded:       int(d.uv()),
		Generated:      int(d.uv()),
		Rejected:       int(d.uv()),
		TimedOut:       d.bool(),
		TruncatedSeeds: int(d.uv()),
		Batches:        int(d.uv()),
		CacheHits:      int64(d.uv()),
		CacheMisses:    int64(d.uv()),
	}
}

// writeAttack serializes a plan-stage artifact. Plans and payload chains
// reference gadgets from the attack's private cloned pool; they are written
// once, in first-use order, sharing one expression table with the plans'
// slot-demand expressions.
func writeAttack(e *enc, a *Attack) {
	gidx := make(map[*gadget.Gadget]uint64)
	var glist []*gadget.Gadget
	collect := func(g *gadget.Gadget) {
		if g == nil {
			return
		}
		if _, ok := gidx[g]; !ok {
			gidx[g] = uint64(len(glist))
			glist = append(glist, g)
		}
	}
	for _, p := range a.Plans {
		for _, st := range p.Steps {
			collect(st.G)
		}
	}
	for _, pl := range a.Payloads {
		for _, g := range pl.Chain {
			collect(g)
		}
	}
	r := newExprReg()
	for _, g := range glist {
		r.regEffect(g.Effect)
	}
	for _, p := range a.Plans {
		for _, dm := range p.Demands {
			r.add(dm.Expr)
		}
	}
	r.write(e)
	e.uv(uint64(len(glist)))
	for _, g := range glist {
		writeGadget(e, r, g)
	}
	writeGoal(e, a.Goal)
	e.uv(uint64(len(a.Plans)))
	for _, p := range a.Plans {
		writePlan(e, r, gidx, p)
	}
	e.uv(uint64(len(a.Payloads)))
	for _, pl := range a.Payloads {
		e.bytes(pl.Bytes)
		e.uv(pl.Base)
		e.uv(pl.Entry)
		e.uv(uint64(len(pl.Chain)))
		for _, g := range pl.Chain {
			e.uv(gidx[g])
		}
	}
	writeResult(e, a.Search)
	e.uv(uint64(a.ConcretizeFailures))
}

func readAttack(d *dec) *Attack {
	b := expr.NewBuilder()
	t := readExprTab(d, b)
	ng := d.count()
	glist := make([]*gadget.Gadget, ng)
	for i := range glist {
		if d.bad {
			return nil
		}
		glist[i] = readGadget(d, t)
	}
	a := &Attack{Goal: readGoal(d)}
	np := d.count()
	for i := 0; i < np; i++ {
		if d.bad {
			return nil
		}
		a.Plans = append(a.Plans, readPlan(d, t, glist))
	}
	npl := d.count()
	for i := 0; i < npl; i++ {
		if d.bad {
			return nil
		}
		pl := &payload.Payload{
			Bytes: d.bytes(),
			Base:  d.uv(),
			Entry: d.uv(),
			Goal:  a.Goal,
		}
		nc := d.count()
		pl.Chain = make([]*gadget.Gadget, nc)
		for j := range pl.Chain {
			ref := d.uv()
			if ref >= uint64(len(glist)) {
				d.fail()
				return nil
			}
			pl.Chain[j] = glist[ref]
		}
		a.Payloads = append(a.Payloads, pl)
	}
	a.Search = readResult(d)
	a.Search.Plans = a.Plans
	a.ConcretizeFailures = int(d.uv())
	return a
}

// encodeArtifact serializes one stage artifact. The bool result is false
// for values the codec does not cover (unknown stages or types), which the
// disk tier treats as "do not persist".
func encodeArtifact(st Stage, v any) ([]byte, bool) {
	e := &enc{}
	switch st {
	case StageBuild, StageEncode:
		bin, ok := v.(*sbf.Binary)
		if !ok || bin == nil {
			return nil, false
		}
		e.bytes(bin.Marshal())
	case StageCount:
		m, ok := v.(map[gadget.JmpType]int)
		if !ok {
			return nil, false
		}
		writeCount(e, m)
	case StageExtract:
		p, ok := v.(*gadget.Pool)
		if !ok || p == nil {
			return nil, false
		}
		writePool(e, p)
	case StageMinimize:
		m, ok := v.(Minimized)
		if !ok || m.Pool == nil {
			return nil, false
		}
		writePool(e, m.Pool)
		writeSubsumeStats(e, m.Stats)
	case StagePlan:
		a, ok := v.(*Attack)
		if !ok || a == nil {
			return nil, false
		}
		writeAttack(e, a)
	default:
		return nil, false
	}
	return e.buf, true
}

// decodeArtifact deserializes one stage artifact. Any malformed input —
// including panics from re-interning structurally invalid expressions —
// returns an error, which the disk tier downgrades to a cache miss.
func decodeArtifact(st Stage, data []byte) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			v, err = nil, fmt.Errorf("pipeline: artifact decode: %v", r)
		}
	}()
	d := &dec{buf: data}
	switch st {
	case StageBuild, StageEncode:
		bin, berr := sbf.Unmarshal(d.bytes())
		if berr != nil {
			return nil, berr
		}
		v = bin
	case StageCount:
		v = readCount(d)
	case StageExtract:
		v = readPool(d)
	case StageMinimize:
		m := Minimized{Pool: readPool(d)}
		m.Stats = readSubsumeStats(d)
		v = m
	case StagePlan:
		v = readAttack(d)
	default:
		return nil, errCorrupt
	}
	if d.bad || d.off != len(d.buf) {
		return nil, errCorrupt
	}
	return v, nil
}
