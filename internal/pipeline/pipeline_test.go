package pipeline

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
)

func TestDoComputesOncePerKey(t *testing.T) {
	s := NewStore()
	var calls atomic.Int64
	compute := func() (*int, error) {
		calls.Add(1)
		v := 7
		return &v, nil
	}

	var wg sync.WaitGroup
	results := make([]*int, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := Do(s, StageExtract, "k", compute)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1 (singleflight)", n)
	}
	for _, r := range results {
		if r != results[0] {
			t.Fatal("concurrent requesters did not share one artifact pointer")
		}
	}
	stats := s.Stats()[StageExtract]
	if stats.Misses != 1 || stats.Hits != 15 {
		t.Fatalf("hits/misses = %d/%d, want 15/1", stats.Hits, stats.Misses)
	}
}

func TestDoHitReportsOriginalComputeCost(t *testing.T) {
	s := NewStore()
	one := func() (int, error) { return 1, nil }
	_, cold, _ := Do(s, StagePlan, "k", one)
	v, warm, _ := Do(s, StagePlan, "k", one)
	if v != 1 {
		t.Fatalf("v = %d", v)
	}
	if cold.Hit || !warm.Hit {
		t.Fatalf("hit flags: cold=%v warm=%v", cold.Hit, warm.Hit)
	}
	if warm.Compute != cold.Compute {
		t.Fatalf("warm hit reports %v, want the original cost %v", warm.Compute, cold.Compute)
	}
}

func TestDisabledStoreRecomputes(t *testing.T) {
	s := NewDisabledStore()
	var calls atomic.Int64
	compute := func() (int, error) { calls.Add(1); return 1, nil }
	Do(s, StageBuild, "k", compute)
	Do(s, StageBuild, "k", compute)
	if n := calls.Load(); n != 2 {
		t.Fatalf("computed %d times, want 2 (disabled store)", n)
	}
	stats := s.Stats()[StageBuild]
	if stats.Hits != 0 || stats.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 0/2", stats.Hits, stats.Misses)
	}
	if s.Caching() {
		t.Fatal("disabled store reports caching")
	}
}

func TestNilStoreAndEmptyKey(t *testing.T) {
	var calls atomic.Int64
	compute := func() (int, error) { calls.Add(1); return 1, nil }
	var nilStore *Store
	Do(nilStore, StageExtract, "k", compute)
	if nilStore.Caching() {
		t.Fatal("nil store reports caching")
	}
	if nilStore.Stats() != nil {
		t.Fatal("nil store stats non-nil")
	}

	s := NewStore()
	Do(s, StageExtract, "", compute) // unfingerprintable: bypasses the store
	Do(s, StageExtract, "", compute)
	if n := calls.Load(); n != 3 {
		t.Fatalf("computed %d times, want 3", n)
	}
	// Empty keys bypass counters too: they are not store traffic.
	if st := s.Stats()[StageExtract]; st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("empty-key requests counted: %d/%d", st.Hits, st.Misses)
	}
}

func TestDoCachesErrors(t *testing.T) {
	s := NewStore()
	boom := errors.New("boom")
	var calls atomic.Int64
	compute := func() (int, error) { calls.Add(1); return 0, boom }
	_, _, err1 := Do(s, StageBuild, "k", compute)
	_, _, err2 := Do(s, StageBuild, "k", compute)
	if !errors.Is(err1, boom) || !errors.Is(err2, boom) {
		t.Fatalf("errors: %v, %v", err1, err2)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("failed computation ran %d times, want 1 (errors are artifacts)", n)
	}
}

// TestOptionFingerprintsCanonicalize pins the property the whole keying
// scheme rests on: zero-value options and explicitly-defaulted options
// address the same artifact, and worker counts never change the key.
func TestOptionFingerprintsCanonicalize(t *testing.T) {
	if (gadget.Options{}).Fingerprint() != (gadget.Options{MaxInsts: 40, Parallelism: 8}).Fingerprint() {
		t.Error("gadget.Options: zero vs defaulted fingerprints differ")
	}
	if (subsume.Options{}).Fingerprint() != (subsume.Options{Parallelism: 3}).Fingerprint() {
		t.Error("subsume.Options: zero vs defaulted fingerprints differ")
	}
	if (planner.Options{}).Fingerprint() != (planner.Options{Parallelism: 5}).Fingerprint() {
		t.Error("planner.Options: zero vs defaulted fingerprints differ")
	}
	// Result-changing knobs must change the key.
	if (gadget.Options{MaxInsts: 10}).Fingerprint() == (gadget.Options{MaxInsts: 12}).Fingerprint() {
		t.Error("gadget.Options: MaxInsts not keyed")
	}
	if (subsume.Options{}).Fingerprint() == (subsume.Options{DisableTriage: true}).Fingerprint() {
		t.Error("subsume.Options: DisableTriage not keyed (Stats counters differ)")
	}
	if (planner.Options{MaxPlans: 1}).Fingerprint() == (planner.Options{MaxPlans: 2}).Fingerprint() {
		t.Error("planner.Options: MaxPlans not keyed")
	}
}

func TestBuildKeyIgnoresProgramName(t *testing.T) {
	if BuildKey("src", []string{"sub"}, 1) != BuildKey("src", []string{"sub"}, 1) {
		t.Fatal("BuildKey not deterministic")
	}
	if BuildKey("src", []string{"sub"}, 1) == BuildKey("src", []string{"sub"}, 2) {
		t.Fatal("seed not keyed")
	}
	if BuildKey("src", []string{"sub", "bcf"}, 1) == BuildKey("src", []string{"bcf", "sub"}, 1) {
		t.Fatal("pass order not keyed")
	}
}

func TestBinaryKeyMemoized(t *testing.T) {
	s := NewStore()
	bin, err := Build(s, benchprog.Benchmarks()[0], nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	k1 := s.BinaryKey(bin)
	k2 := s.BinaryKey(bin)
	if k1 == "" || k1 != k2 {
		t.Fatalf("BinaryKey not stable: %q vs %q", k1, k2)
	}
	var nilStore *Store
	if nilStore.BinaryKey(bin) != "" {
		t.Fatal("nil store BinaryKey should be empty")
	}
}

// TestBuildSharedAcrossStages exercises the chained helpers end to end:
// one build, shared; scan, extraction, and self-modification all served
// from the same store on repeat.
func TestBuildSharedAcrossStages(t *testing.T) {
	s := NewStore()
	p := benchprog.Benchmarks()[0]
	passes := obfuscate.LLVMObf()

	b1, err := Build(s, p, passes, 42)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Build(s, p, passes, 42)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatal("repeat build not served from store")
	}

	c1 := Count(s, b1, 10)
	c2 := Count(s, b1, 10)
	if &c1 == nil || gadget.TotalCount(c1) != gadget.TotalCount(c2) {
		t.Fatal("count artifacts disagree")
	}

	p1 := Extract(s, b1, gadget.Options{})
	p2 := Extract(s, b1, gadget.Options{MaxInsts: 40})
	if p1 != p2 {
		t.Fatal("defaulted extract options did not share the artifact")
	}

	sm1, err := SelfModify(s, b1, 0x5A)
	if err != nil {
		t.Fatal(err)
	}
	sm2, err := SelfModify(s, b1, 0x5A)
	if err != nil {
		t.Fatal(err)
	}
	if sm1 != sm2 {
		t.Fatal("repeat self-modification not served from store")
	}

	stats := s.Stats()
	for _, st := range []Stage{StageBuild, StageCount, StageExtract, StageEncode} {
		if stats[st].Hits == 0 {
			t.Errorf("stage %s saw no hits", st)
		}
	}
	if s.StatsLine() == "" {
		t.Error("empty stats line")
	}
}
