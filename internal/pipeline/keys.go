package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
)

// Artifact keys are canonical fingerprints of everything that determines a
// stage's output, chained stage to stage: a downstream key embeds its
// upstream key, so two cells share a minimize artifact only when their
// whole build→extract prefix matches. Hashes cover content (program
// source, binary bytes); options contribute their canonical Fingerprint()
// renderings, which apply defaults — so a zero Options and an explicitly
// defaulted one address the same artifact — and exclude worker counts,
// which never change results.

// BuildKey fingerprints the compile/obfuscate stage: the program source,
// the ordered pass names, and the obfuscation seed. The program's display
// name is deliberately excluded — two differently-named programs with the
// same source build the same binary.
func BuildKey(source string, passNames []string, seed int64) string {
	h := sha256.New()
	io.WriteString(h, source)
	h.Write([]byte{0})
	for _, n := range passNames {
		io.WriteString(h, n)
		h.Write([]byte{0})
	}
	fmt.Fprintf(h, "seed=%d", seed)
	return "build:" + hex.EncodeToString(h.Sum(nil)[:16])
}

// BuildKeyISA fingerprints the compile/obfuscate stage under a specific
// backend. The default x64 backend yields BuildKey's exact string, so every
// pre-multi-ISA build artifact stays addressable.
func BuildKeyISA(source string, passNames []string, seed int64, isaName string) string {
	k := BuildKey(source, passNames, seed)
	if name := isa.CanonicalISA(isaName); name != isa.DefaultISA {
		k += "|isa=" + name
	}
	return k
}

// BinaryKey content-addresses a binary (its serialized bytes), memoized
// per *sbf.Binary pointer — store-shared binaries are hashed once.
// Nil-safe: a nil store returns "" (compute-directly mode).
func (s *Store) BinaryKey(bin *sbf.Binary) string {
	if s == nil {
		return ""
	}
	if k, ok := s.binKeys.Load(bin); ok {
		return k.(string)
	}
	defer TrackWall("keyhash")()
	sum := sha256.Sum256(bin.Marshal())
	k := "bin:" + hex.EncodeToString(sum[:16])
	s.binKeys.Store(bin, k)
	return k
}

// EncodeKey fingerprints the self-modification transform of a built binary.
func EncodeKey(binKey string, xorKey byte) string {
	return binKey + "|enc:" + fmt.Sprintf("%d", xorKey)
}

// CountKey fingerprints the classic gadget scan of a binary.
func CountKey(binKey string, maxInsts int) string {
	if maxInsts == 0 {
		maxInsts = 10 // gadget.Count's default
	}
	return binKey + "|count:" + fmt.Sprintf("%d", maxInsts)
}

// CountKeyISA fingerprints the classic scan under a specific backend. The
// default x64 backend yields CountKey's exact string, so pre-multi-ISA warm
// caches stay addressable.
func CountKeyISA(binKey string, maxInsts int, isaName string) string {
	k := CountKey(binKey, maxInsts)
	if name := isa.CanonicalISA(isaName); name != isa.DefaultISA {
		k += ",isa=" + name
	}
	return k
}

// ExtractKey fingerprints the extraction stage.
func ExtractKey(binKey string, o gadget.Options) string {
	return binKey + "|x:" + o.Fingerprint()
}

// MinimizeKey fingerprints the subsumption stage on an extracted pool.
func MinimizeKey(extractKey string, o subsume.Options) string {
	return extractKey + "|m:" + o.Fingerprint()
}

// SkipSubsumeKey marks a pool that bypassed minimization (the ablation
// configuration) so its plan artifacts never alias the minimized pool's.
func SkipSubsumeKey(extractKey string) string {
	return extractKey + "|m:skip"
}

// PlanKey fingerprints the planning + payload-construction stage for one
// goal: the pool artifact it searches, the goal (by canonical name — core's
// goals come from planner.Goals()), the search options, and the payload
// parameters the validator closure is built from.
func PlanKey(poolKey, goalName string, o planner.Options, payloadBase, verifySteps uint64, skipVerify bool) string {
	return fmt.Sprintf("%s|p:%s|%s|base=%#x,steps=%d,verify=%t",
		poolKey, goalName, o.Fingerprint(), payloadBase, verifySteps, !skipVerify)
}

// Build compiles (source, passes, seed) through the store.
func Build(s *Store, p benchprog.Program, passes []obfuscate.Pass, seed int64) (*sbf.Binary, error) {
	bin, _, err := BuildCtx(context.Background(), s, p, passes, seed)
	return bin, err
}

// BuildCtx is Build with a cancellation boundary and the store's request
// outcome — the analysis service uses the Info to report per-stage
// progress and cached markers to clients.
func BuildCtx(ctx context.Context, s *Store, p benchprog.Program, passes []obfuscate.Pass, seed int64) (*sbf.Binary, Info, error) {
	key := ""
	if s != nil {
		names := make([]string, len(passes))
		for i, ps := range passes {
			names[i] = ps.Name()
		}
		key = BuildKey(p.Source, names, seed)
	}
	return DoCtx(ctx, s, StageBuild, key, func() (*sbf.Binary, error) {
		return benchprog.Build(p, passes, seed)
	})
}

// BuildISACtx is BuildCtx against a specific code-generation backend
// ("x64", "rv64", "rv64c"; empty selects the default x64 and produces
// BuildCtx's exact artifact and key).
func BuildISACtx(ctx context.Context, s *Store, p benchprog.Program, passes []obfuscate.Pass, seed int64, isaName string) (*sbf.Binary, Info, error) {
	if isa.CanonicalISA(isaName) == isa.DefaultISA {
		return BuildCtx(ctx, s, p, passes, seed)
	}
	key := ""
	if s != nil {
		names := make([]string, len(passes))
		for i, ps := range passes {
			names[i] = ps.Name()
		}
		key = BuildKeyISA(p.Source, names, seed, isaName)
	}
	return DoCtx(ctx, s, StageBuild, key, func() (*sbf.Binary, error) {
		return benchprog.BuildISA(p, passes, seed, isaName)
	})
}

// SelfModify applies the post-link self-modification transform through the
// store.
func SelfModify(s *Store, bin *sbf.Binary, key byte) (*sbf.Binary, error) {
	out, _, err := SelfModifyCtx(context.Background(), s, bin, key)
	return out, err
}

// SelfModifyCtx is SelfModify with a cancellation boundary and the store's
// request outcome.
func SelfModifyCtx(ctx context.Context, s *Store, bin *sbf.Binary, key byte) (*sbf.Binary, Info, error) {
	k := ""
	if s != nil {
		k = EncodeKey(s.BinaryKey(bin), key)
	}
	return DoCtx(ctx, s, StageEncode, k, func() (*sbf.Binary, error) {
		return obfuscate.SelfModifyBinary(bin, key)
	})
}

// Count runs the classic gadget scan through the store. The returned map is
// a shared artifact: read-only by contract.
func Count(s *Store, bin *sbf.Binary, maxInsts int) map[gadget.JmpType]int {
	m, _, _ := CountCtx(context.Background(), s, bin, maxInsts)
	return m
}

// CountCtx is Count with a cancellation boundary and the store's request
// outcome. The scan runs under the binary's own backend (pre-multi-ISA
// binaries carry an empty tag, read as x64).
func CountCtx(ctx context.Context, s *Store, bin *sbf.Binary, maxInsts int) (map[gadget.JmpType]int, Info, error) {
	return CountISACtx(ctx, s, bin, maxInsts, bin.ISA)
}

// CountISA runs the classic scan under a specific backend through the store.
func CountISA(s *Store, bin *sbf.Binary, maxInsts int, isaName string) map[gadget.JmpType]int {
	m, _, _ := CountISACtx(context.Background(), s, bin, maxInsts, isaName)
	return m
}

// CountISACtx is CountISA with a cancellation boundary and the store's
// request outcome.
func CountISACtx(ctx context.Context, s *Store, bin *sbf.Binary, maxInsts int, isaName string) (map[gadget.JmpType]int, Info, error) {
	k := ""
	if s != nil {
		k = CountKeyISA(s.BinaryKey(bin), maxInsts, isaName)
	}
	be, ok := isa.ByName(isaName)
	if !ok {
		be = isa.X64
	}
	return DoCtx(ctx, s, StageCount, k, func() (map[gadget.JmpType]int, error) {
		return gadget.CountISA(bin, maxInsts, be), nil
	})
}

// Extract runs the extraction stage through the store. The returned pool is
// a shared immutable artifact: consumers that mutate builder state clone it
// first (gadget.ClonePool).
func Extract(s *Store, bin *sbf.Binary, o gadget.Options) *gadget.Pool {
	k := ""
	if s != nil {
		k = ExtractKey(s.BinaryKey(bin), o)
	}
	pool, _, _ := Do(s, StageExtract, k, func() (*gadget.Pool, error) {
		return gadget.Extract(bin, o), nil
	})
	return pool
}
