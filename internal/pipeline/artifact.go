package pipeline

import (
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/payload"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
)

// The stage artifact types below live here, next to the store, because they
// are what the disk tier persists: the codec (codec.go) needs a concrete
// named type per stage, and core cannot host them without an import cycle
// (pipeline is core's dependency). core re-exports Attack under its
// original name, so the public analysis API is unchanged.

// Minimized bundles the subsumption stage's two outputs — the reduced pool
// and the reduction statistics — into one artifact.
type Minimized struct {
	Pool  *gadget.Pool
	Stats subsume.Stats
}

// Attack is the outcome of the planning + payload-construction stages for
// one goal (core stages 3–4), and the plan stage's store artifact.
type Attack struct {
	Goal planner.Goal
	// Payloads are emulator-verified (or, with SkipVerify, solver-accepted)
	// attack payloads, one per distinct plan.
	Payloads []*payload.Payload
	// Plans are the corresponding abstract plans.
	Plans []*planner.Plan
	// Search reports planner effort.
	Search planner.Result
	// ConcretizeFailures counts plans the solver or verifier rejected.
	ConcretizeFailures int
}
