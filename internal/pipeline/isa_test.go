package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
)

// TestX64KeysUnchanged pins the default backend's key strings to their
// pre-multi-ISA golden values. These strings address artifacts in every
// warm cache written before the backend refactor; if one of them drifts,
// those caches silently go cold — so this test fails on any change, even a
// "harmless" renaming.
func TestX64KeysUnchanged(t *testing.T) {
	source := "int main() { return 42; }"
	passes := []string{"flatten", "opaque"}
	const goldenBuild = "build:4abb9cbfed829004398bd8aba47bd8ce"
	if k := BuildKey(source, passes, 7); k != goldenBuild {
		t.Errorf("BuildKey = %q, want %q", k, goldenBuild)
	}
	// The ISA-aware forms must collapse to the exact same string for the
	// default backend, spelled either way.
	for _, name := range []string{"", "x64"} {
		if k := BuildKeyISA(source, passes, 7, name); k != goldenBuild {
			t.Errorf("BuildKeyISA(%q) = %q, want %q", name, k, goldenBuild)
		}
	}

	bk := "bin:0123"
	if k := CountKey(bk, 0); k != "bin:0123|count:10" {
		t.Errorf("CountKey = %q", k)
	}
	for _, name := range []string{"", "x64"} {
		if k := CountKeyISA(bk, 0, name); k != "bin:0123|count:10" {
			t.Errorf("CountKeyISA(%q) = %q", name, k)
		}
	}
	const goldenExtract = "bin:0123|x:insts=40,forks=2,merges=3,stride=1"
	if k := ExtractKey(bk, gadget.Options{}); k != goldenExtract {
		t.Errorf("ExtractKey = %q, want %q", k, goldenExtract)
	}
	if k := ExtractKey(bk, gadget.Options{ISA: "x64"}); k != goldenExtract {
		t.Errorf("ExtractKey(ISA=x64) = %q, want %q", k, goldenExtract)
	}
	if k := MinimizeKey(goldenExtract, subsume.Options{}); k != goldenExtract+"|m:fp=4,conf=4096,triage=true" {
		t.Errorf("MinimizeKey = %q", k)
	}
	if k := SkipSubsumeKey(goldenExtract); k != goldenExtract+"|m:skip" {
		t.Errorf("SkipSubsumeKey = %q", k)
	}
	const goldenPlan = "pool|p:execve|plans=8,nodes=30000,steps=10,cands=8,timeout=30s,batch=16,cache=true|base=0x7fff8000,steps=100000,verify=true"
	if k := PlanKey("pool", "execve", planner.Options{}, 0x7fff8000, 100000, false); k != goldenPlan {
		t.Errorf("PlanKey = %q, want %q", k, goldenPlan)
	}
}

// TestBackendKeysDistinct checks that two backends never share an artifact:
// the backend identifier joins every stage key as soon as it is not the
// default, at build, count, and extract granularity.
func TestBackendKeysDistinct(t *testing.T) {
	source := "int main() { return 0; }"
	seen := map[string]string{}
	for _, name := range []string{"x64", "rv64", "rv64c"} {
		k := BuildKeyISA(source, nil, 1, name)
		if prev, dup := seen[k]; dup {
			t.Errorf("BuildKeyISA: %s and %s share key %q", prev, name, k)
		}
		seen[k] = name
	}
	if CountKeyISA("bin:0", 0, "rv64") == CountKeyISA("bin:0", 0, "rv64c") {
		t.Error("CountKeyISA: rv64 and rv64c share a key")
	}
	if ExtractKey("bin:0", gadget.Options{ISA: "rv64"}) == ExtractKey("bin:0", gadget.Options{}) {
		t.Error("ExtractKey: rv64 aliases the default backend")
	}
}

// TestX64PoolCanonGolden pins the default backend's extraction output
// byte-for-byte: the canonical rendering of the pool (and hence every
// downstream artifact) must hash to the same value as before the backend
// refactor moved decode/classify behind the isa interface.
func TestX64PoolCanonGolden(t *testing.T) {
	golden := []struct {
		prog   string
		obf    []obfuscate.Pass
		label  string
		sum    string
		gadget int
	}{
		{"crc", nil, "orig", "6dbade3b91616095", 130},
		{"crc", obfuscate.LLVMObf(), "llvm", "5aad628b87bd23e7", 362},
		{"fibonacci", nil, "orig", "cc50cd0f7ade910d", 142},
		{"fibonacci", obfuscate.LLVMObf(), "llvm", "0ee6f663bd7f4e28", 418},
	}
	for _, g := range golden {
		p, ok := benchprog.ByName(g.prog)
		if !ok {
			t.Fatalf("%s benchmark missing", g.prog)
		}
		bin, err := benchprog.Build(p, g.obf, 7)
		if err != nil {
			t.Fatal(err)
		}
		pool := gadget.Extract(bin, gadget.Options{})
		if pool.Size() != g.gadget {
			t.Errorf("%s/%s: pool size %d, want %d", g.prog, g.label, pool.Size(), g.gadget)
		}
		sum := sha256.Sum256([]byte(pool.Canon()))
		if got := hex.EncodeToString(sum[:8]); got != g.sum {
			t.Errorf("%s/%s: pool canon hash %s, want %s", g.prog, g.label, got, g.sum)
		}
	}
}

// TestCrossISADeterminism is the per-backend determinism matrix: for every
// backend, extraction renders byte-identically across parallelism 1/2/8 and
// with the artifact store on or off (a fresh caching store, the disabled
// store, and no store at all all agree).
func TestCrossISADeterminism(t *testing.T) {
	p, ok := benchprog.ByName("crc")
	if !ok {
		t.Fatal("crc benchmark missing")
	}
	for _, isaName := range []string{"x64", "rv64", "rv64c"} {
		bin, err := benchprog.BuildISA(p, obfuscate.LLVMObf(), 7, isaName)
		if err != nil {
			t.Fatalf("%s: build: %v", isaName, err)
		}
		ref := gadget.Extract(bin, gadget.Options{ISA: isaName, Parallelism: 1}).Canon()
		for _, par := range []int{1, 2, 8} {
			opts := gadget.Options{ISA: isaName, Parallelism: par}
			stores := map[string]*Store{
				"nostore":  nil,
				"store":    NewStore(),
				"disabled": NewDisabledStore(),
			}
			for label, s := range stores {
				got := Extract(s, cloneForStore(s, bin), opts).Canon()
				if got != ref {
					t.Errorf("%s: pool differs at parallelism=%d store=%s", isaName, par, label)
				}
			}
		}
	}
}

// cloneForStore hands each store arm its own binary pointer so BinaryKey
// memoization never crosses arms (the bytes are identical either way).
func cloneForStore(s *Store, bin *sbf.Binary) *sbf.Binary {
	if s == nil {
		return bin
	}
	clone, err := sbf.Unmarshal(bin.Marshal())
	if err != nil {
		panic(err)
	}
	return clone
}
