// Package pipeline is the staged analysis pipeline's content-addressed
// artifact store. The paper's workflow is a fixed chain — Compile →
// Obfuscate/Encode → Extract → Minimize → Plan — and every experiment cell,
// bench, and CLI walks some prefix of it over a (program × obfuscation ×
// seed) matrix. Each stage's output is an immutable artifact keyed by a
// canonical fingerprint of everything that determines it (source hash,
// ordered pass names, seed, stage options); cells that request the same
// prefix compute it exactly once, concurrently deduplicated, and share the
// result.
//
// Sharing is sound because every stage is a deterministic, parallelism-
// invariant function of its fingerprinted inputs (the determinism suites in
// core, subsume, and planner pin this down), and because artifacts are
// immutable by contract: consumers that need to mutate downstream state —
// payload concretization interns fresh expression nodes — clone first
// (gadget.ClonePool), exactly as the non-cached pipeline already did.
// Worker counts are therefore excluded from fingerprints, and a cached
// table cell is byte-identical to a recomputed one at any Parallelism.
package pipeline

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names one pipeline stage for keying and accounting.
type Stage uint8

// The pipeline stages, in chain order. StageEncode is the post-link
// self-modification transform; StageCount is the classic gadget scan
// (Fig. 1 / Table I), a side chain off the build artifact.
const (
	StageBuild Stage = iota
	StageEncode
	StageCount
	StageExtract
	StageMinimize
	StagePlan
	numStages
)

var stageNames = [numStages]string{
	"build", "encode", "count", "extract", "minimize", "plan",
}

// String names the stage as it appears in stats and BENCH_CACHE.json.
func (st Stage) String() string {
	if int(st) < len(stageNames) {
		return stageNames[st]
	}
	return fmt.Sprintf("stage(%d)", uint8(st))
}

// Store memoizes stage artifacts by key. It is safe for concurrent use;
// concurrent requests for one key compute it once (singleflight) and share
// the result. A nil *Store is valid everywhere and simply computes each
// stage directly — the pre-store pipeline behavior.
//
// A store may additionally be backed by a persistent tier (WithDisk): on a
// memory miss the artifact is decoded from disk if an earlier process
// persisted it, and fresh computations are serialized back. The disk tier
// is transparent — a decoded artifact is interchangeable with a computed
// one (see codec.go) — and purely best-effort: any disk failure degrades to
// a recompute.
type Store struct {
	caching  bool
	disk     *Disk
	gate     *Gate
	mu       sync.Mutex
	entries  map[string]*entry
	binKeys  sync.Map // *sbf.Binary -> string, memoized content hashes
	counters [numStages]stageCounter

	// maxEntries bounds the memory tier (0 = unbounded): completed
	// artifacts beyond the budget are dropped least-recently-used, so
	// long-running corpus sweeps release each cell's artifacts instead of
	// accumulating the whole matrix. With a disk tier attached, an evicted
	// artifact is usually re-served from disk rather than recomputed.
	maxEntries   int
	lru          *list.List // front = most recent; holds *entry
	memEvictions atomic.Int64
}

type stageCounter struct {
	hits       atomic.Int64
	misses     atomic.Int64
	diskHits   atomic.Int64
	diskMisses atomic.Int64
	computeNs  atomic.Int64
}

type entry struct {
	once    sync.Once
	val     any
	err     error
	compute time.Duration
	alloc   uint64

	// key and elem tie the entry to the LRU list of a bounded store; done
	// marks the computation finished — only done entries are evictable, so
	// waiters blocked in once.Do never lose their entry mid-flight.
	key  string
	elem *list.Element // guarded by Store.mu
	done atomic.Bool
}

// NewStore returns an empty caching store.
func NewStore() *Store {
	return &Store{caching: true, entries: make(map[string]*entry)}
}

// NewDisabledStore returns a store that never reuses artifacts (the
// -nocache A/B configuration). Every request recomputes, but per-stage miss
// and compute-time counters still accumulate, so cold-path stats stay
// comparable with the caching store's.
func NewDisabledStore() *Store {
	return &Store{}
}

// Caching reports whether the store reuses artifacts (false for nil and
// disabled stores).
func (s *Store) Caching() bool { return s != nil && s.caching }

// LimitMemory bounds the memory tier to maxEntries completed artifacts,
// evicting least-recently-used ones beyond the budget, and returns s for
// chaining. It is how streaming workloads keep peak memory flat in cell
// count: each cell's artifacts age out once its neighbors stop sharing
// them, and the disk tier (if attached) keeps serving evicted keys.
// A no-op on nil/disabled stores and for maxEntries <= 0.
func (s *Store) LimitMemory(maxEntries int) *Store {
	if s != nil && s.caching && maxEntries > 0 {
		s.mu.Lock()
		s.maxEntries = maxEntries
		if s.lru == nil {
			s.lru = list.New()
			for key, e := range s.entries {
				e.key = key
				e.elem = s.lru.PushFront(e)
			}
		}
		s.mu.Unlock()
	}
	return s
}

// MemEvictions reports how many completed artifacts the bounded memory
// tier has dropped. Nil-safe.
func (s *Store) MemEvictions() int64 {
	if s == nil {
		return 0
	}
	return s.memEvictions.Load()
}

// MemEntries reports the memory tier's current artifact count. Nil-safe.
func (s *Store) MemEntries() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// evictMem drops least-recently-used completed entries until the memory
// tier is back under budget. Callers hold s.mu. In-flight entries (done
// not yet set) are skipped: their waiters hold the *entry and must see the
// computation finish.
func (s *Store) evictMem() {
	if s.maxEntries <= 0 || s.lru == nil {
		return
	}
	for el := s.lru.Back(); el != nil && len(s.entries) > s.maxEntries; {
		prev := el.Prev()
		e := el.Value.(*entry)
		if e.done.Load() {
			s.lru.Remove(el)
			delete(s.entries, e.key)
			s.memEvictions.Add(1)
		}
		el = prev
	}
}

// WithDisk attaches a persistent tier and returns s for chaining. It is a
// no-op on nil and disabled stores: -nocache means no reuse at all, so the
// disabled A/B arm never reads or writes the disk.
func (s *Store) WithDisk(d *Disk) *Store {
	if s != nil && s.caching {
		s.disk = d
	}
	return s
}

// WithGate attaches a per-stage compute gate (see Gate) and returns s for
// chaining. Unlike WithDisk it applies to disabled stores too: the -nocache
// A/B arm recomputes everything, but a server still needs its stage pools
// bounded. Nil-safe.
func (s *Store) WithGate(g *Gate) *Store {
	if s != nil {
		s.gate = g
	}
	return s
}

// Gate returns the attached compute gate, or nil. Nil-safe.
func (s *Store) Gate() *Gate {
	if s == nil {
		return nil
	}
	return s.gate
}

// Disk returns the attached persistent tier, or nil. Nil-safe.
func (s *Store) Disk() *Disk {
	if s == nil {
		return nil
	}
	return s.disk
}

// DiskStats snapshots the attached tier's counters (zero when none).
// Nil-safe.
func (s *Store) DiskStats() DiskStats { return s.Disk().Stats() }

// Info describes how one stage request was served.
type Info struct {
	// Hit reports the artifact came from the store.
	Hit bool
	// Compute is the artifact's compute cost — this call's, or on a hit
	// the recorded cost of the original computation.
	Compute time.Duration
	// AllocBytes is the heap allocated by the computation (the pipeline's
	// peak-memory proxy, as in core.StageTiming).
	AllocBytes uint64
}

// measured runs f under the same time/alloc accounting the pre-store
// pipeline used per stage.
func measured[T any](f func() (T, error)) (T, time.Duration, uint64, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	v, err := f()
	d := time.Since(start)
	runtime.ReadMemStats(&after)
	return v, d, after.TotalAlloc - before.TotalAlloc, err
}

// Do returns the stage artifact for key, computing it at most once per
// store. An empty key (or a nil store) bypasses memoization and computes
// directly — callers use that for inputs that cannot be fingerprinted,
// e.g. a closure-valued GadgetFilter. Errors are artifacts too: a failed
// computation is cached and returned to every requester of the key.
func Do[T any](s *Store, st Stage, key string, compute func() (T, error)) (T, Info, error) {
	return DoCtx(context.Background(), s, st, key, compute)
}

// DoCtx is Do with a cancellation boundary: a context canceled before the
// stage is entered returns ctx.Err() without computing or caching
// anything, so a dropped client or a shutting-down server skips every
// stage it has not yet started. Cancellation is deliberately
// stage-granular — once a computation is admitted it runs to completion,
// because its artifact is shared: the singleflight layer may have
// concurrent waiters for the same key, and a half-finished (or
// context-poisoned) artifact must never be cached. Context errors are
// therefore never stored as error artifacts.
func DoCtx[T any](ctx context.Context, s *Store, st Stage, key string, compute func() (T, error)) (T, Info, error) {
	if err := ctx.Err(); err != nil {
		var zero T
		return zero, Info{}, err
	}
	if s == nil || !s.caching || key == "" {
		var gate *Gate
		if s != nil {
			gate = s.gate
		}
		gate.enter(st)
		v, d, alloc, err := measured(compute)
		gate.exit(st)
		if s != nil && key != "" {
			c := &s.counters[st]
			c.misses.Add(1)
			c.computeNs.Add(int64(d))
		}
		return v, Info{Compute: d, AllocBytes: alloc}, err
	}

	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		e = &entry{key: key}
		s.entries[key] = e
		if s.lru != nil {
			e.elem = s.lru.PushFront(e)
		}
	} else if s.lru != nil && e.elem != nil {
		s.lru.MoveToFront(e.elem)
	}
	s.mu.Unlock()

	const (
		servedMemory  = iota // once already done: in-memory hit
		servedDisk           // decoded from the persistent tier
		servedCompute        // computed now
	)
	served := servedMemory
	e.once.Do(func() {
		// The winner holds a stage slot for the whole disk-probe + compute
		// sequence; waiters for this key block in once.Do, not in the gate.
		s.gate.enter(st)
		defer s.gate.exit(st)
		c := &s.counters[st]
		if s.disk != nil {
			if payload, meta, ok := s.disk.get(st, key); ok {
				v, derr := decodeArtifact(st, payload)
				if tv, tok := v.(T); derr == nil && tok {
					// A disk hit reports the original computation's
					// persisted cost, like an in-memory hit reports the
					// recorded one.
					e.val, e.compute, e.alloc = tv, meta.compute, meta.alloc
					served = servedDisk
					c.diskHits.Add(1)
					return
				}
				s.disk.discard(st, key)
			}
			c.diskMisses.Add(1)
		}
		served = servedCompute
		var v T
		v, e.compute, e.alloc, e.err = measured(compute)
		e.val = v
		c.misses.Add(1)
		c.computeNs.Add(int64(e.compute))
		// Persist for future processes. Errors are memory-only artifacts:
		// they are never written to (or read from) disk.
		if s.disk != nil && e.err == nil {
			if payload, ok := encodeArtifact(st, e.val); ok {
				s.disk.put(st, key, payload, diskMeta{compute: e.compute, alloc: e.alloc})
			}
		}
	})
	if !e.done.Load() {
		e.done.Store(true)
	}
	if s.maxEntries > 0 {
		s.mu.Lock()
		s.evictMem()
		s.mu.Unlock()
	}
	if served == servedMemory {
		s.counters[st].hits.Add(1)
	}
	info := Info{Hit: served != servedCompute, Compute: e.compute, AllocBytes: e.alloc}
	if e.err != nil {
		var zero T
		return zero, info, e.err
	}
	return e.val.(T), info, nil
}

// StageStats is one stage's store counters (a BENCH_CACHE.json /
// BENCH_DISK.json row). DiskHits/DiskMisses count persistent-tier lookups
// on in-memory misses; they stay zero without an attached Disk.
type StageStats struct {
	Stage          string  `json:"stage"`
	Hits           int64   `json:"hits"`
	Misses         int64   `json:"misses"`
	DiskHits       int64   `json:"disk_hits,omitempty"`
	DiskMisses     int64   `json:"disk_misses,omitempty"`
	ComputeSeconds float64 `json:"compute_seconds"`
}

// DiskHitRate is the fraction of persistent-tier lookups that hit.
func (s StageStats) DiskHitRate() float64 {
	total := s.DiskHits + s.DiskMisses
	if total == 0 {
		return 0
	}
	return float64(s.DiskHits) / float64(total)
}

// HitRate is the fraction of requests served from the store.
func (s StageStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the per-stage counters in chain order. Nil-safe.
func (s *Store) Stats() []StageStats {
	if s == nil {
		return nil
	}
	out := make([]StageStats, numStages)
	for st := Stage(0); st < numStages; st++ {
		c := &s.counters[st]
		out[st] = StageStats{
			Stage:          st.String(),
			Hits:           c.hits.Load(),
			Misses:         c.misses.Load(),
			DiskHits:       c.diskHits.Load(),
			DiskMisses:     c.diskMisses.Load(),
			ComputeSeconds: time.Duration(c.computeNs.Load()).Seconds(),
		}
	}
	return out
}

// StatsLine renders the counters as one line for CLI stats output, in the
// style of subsume.Stats and planner.Result.StatsLine.
func (s *Store) StatsLine() string {
	if s == nil {
		return "store: disabled"
	}
	var sb strings.Builder
	sb.WriteString("store:")
	if !s.caching {
		sb.WriteString(" (nocache)")
	}
	traffic := false
	var diskHits, diskMisses int64
	for _, st := range s.Stats() {
		diskHits += st.DiskHits
		diskMisses += st.DiskMisses
		if st.Hits == 0 && st.Misses == 0 && st.DiskHits == 0 {
			continue
		}
		// A disk-served request is a store hit too: hits counts both tiers,
		// misses counts computations.
		traffic = true
		fmt.Fprintf(&sb, " %s=%d/%d", st.Stage, st.Hits+st.DiskHits, st.Misses)
	}
	if !traffic {
		sb.WriteString(" no requests")
	} else {
		sb.WriteString(" hit/miss")
	}
	if s.disk != nil {
		ds := s.disk.Stats()
		fmt.Fprintf(&sb, "; disk: %d/%d hit/miss, %d evicted, %.1f/%.1f MB r/w",
			diskHits, diskMisses, ds.Evictions,
			float64(ds.BytesRead)/1e6, float64(ds.BytesWritten)/1e6)
	}
	if s.maxEntries > 0 {
		fmt.Fprintf(&sb, "; mem: %d/%d entries, %d evicted",
			s.MemEntries(), s.maxEntries, s.MemEvictions())
	}
	return sb.String()
}
