package pipeline

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestLimitMemoryEvictsLRU pins the bounded memory tier's contract: beyond
// the budget, completed artifacts are dropped least-recently-used, an
// evicted key recomputes on its next request, and retained keys keep
// hitting.
func TestLimitMemoryEvictsLRU(t *testing.T) {
	s := NewStore().LimitMemory(2)
	var calls atomic.Int64
	do := func(key string) {
		t.Helper()
		v, _, err := Do(s, StageBuild, key, func() (string, error) {
			calls.Add(1)
			return "v-" + key, nil
		})
		if err != nil || v != "v-"+key {
			t.Fatalf("Do(%s) = %q, %v", key, v, err)
		}
	}
	do("a")
	do("b")
	do("c") // budget 2: evicts a
	if got := s.MemEvictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := s.MemEntries(); got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}
	do("b") // still resident
	do("c")
	if got := calls.Load(); got != 3 {
		t.Fatalf("computes after hits = %d, want 3", got)
	}
	do("a") // evicted: recomputes (and evicts b, the now-oldest)
	if got := calls.Load(); got != 4 {
		t.Fatalf("computes after re-request = %d, want 4", got)
	}
	do("c") // was touched before a's return: still resident
	if got := calls.Load(); got != 4 {
		t.Fatalf("c recomputed after a's return; computes = %d, want 4", got)
	}
	if line := s.StatsLine(); !strings.Contains(line, "mem:") {
		t.Errorf("StatsLine missing mem tier: %q", line)
	}
}

// TestLimitMemoryPinsInFlight pins that eviction never drops an entry whose
// computation is still running: waiters blocked in the singleflight hold
// the entry and must observe exactly one computation.
func TestLimitMemoryPinsInFlight(t *testing.T) {
	s := NewStore().LimitMemory(1)
	started := make(chan struct{})
	release := make(chan struct{})
	var slowCalls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := Do(s, StageBuild, "slow", func() (int, error) {
				slowCalls.Add(1)
				close(started)
				<-release
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("slow Do = %d, %v", v, err)
			}
		}()
	}
	<-started
	// Churn well past the budget while "slow" is mid-flight; the evictor
	// must skip it.
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("churn-%d", i)
		Do(s, StageBuild, key, func() (int, error) { return i, nil })
	}
	close(release)
	wg.Wait()
	if got := slowCalls.Load(); got != 1 {
		t.Fatalf("in-flight entry recomputed: %d computations", got)
	}
}

// TestLimitMemoryNoops pins the no-op cases: nil, disabled, and unbounded
// stores take the LimitMemory call without growing state or evicting.
func TestLimitMemoryNoops(t *testing.T) {
	var nilStore *Store
	if s := nilStore.LimitMemory(4); s != nil {
		t.Error("nil store LimitMemory returned non-nil")
	}
	d := NewDisabledStore().LimitMemory(4)
	for i := 0; i < 8; i++ {
		Do(d, StageBuild, "k", func() (int, error) { return i, nil })
	}
	if got := d.MemEvictions(); got != 0 {
		t.Errorf("disabled store evicted %d", got)
	}
	u := NewStore().LimitMemory(0) // <= 0: unbounded
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("k%d", i)
		Do(u, StageBuild, key, func() (int, error) { return i, nil })
	}
	if got, want := u.MemEntries(), 8; got != want {
		t.Errorf("unbounded entries = %d, want %d", got, want)
	}
	if got := u.MemEvictions(); got != 0 {
		t.Errorf("unbounded store evicted %d", got)
	}
}
