package pipeline

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Wall buckets account for the suite wall time the per-stage store counters
// cannot see. A fully warm run still spends seconds outside stage
// computations — table rendering, payload verification inside the plan
// stage's closure, emulator replay in the netperf case study, fingerprint
// hashing — and BENCH_CACHE.json's "100% hits yet 5.1s" floor is exactly
// that unaccounted remainder. Callers wrap those regions with TrackWall and
// the CLIs print WallLine next to Store.StatsLine, turning the uncached
// floor into named numbers.
//
// The registry is process-global on purpose: the regions it names span
// packages (core verifies payloads, experiments renders tables) and the
// consumer is a per-process stats line, exactly like the stage counters a
// Store accumulates per run.

var (
	wallMu      sync.Mutex
	wallBuckets = map[string]*wallBucket{}
)

type wallBucket struct {
	total time.Duration
	count int64
}

// TrackWall starts timing a named non-stage region and returns the stop
// function; use `defer TrackWall("render")()` around a region. Safe for
// concurrent use; nested and overlapping regions simply accumulate (the
// buckets are a breakdown, not a partition).
func TrackWall(name string) func() {
	start := time.Now()
	return func() {
		d := time.Since(start)
		wallMu.Lock()
		b := wallBuckets[name]
		if b == nil {
			b = &wallBucket{}
			wallBuckets[name] = b
		}
		b.total += d
		b.count++
		wallMu.Unlock()
	}
}

// WallBucketStat is one named region's accumulated cost.
type WallBucketStat struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// WallStats snapshots the buckets, most expensive first (name-ordered on
// ties, so the rendering is deterministic for fixed durations).
func WallStats() []WallBucketStat {
	wallMu.Lock()
	defer wallMu.Unlock()
	out := make([]WallBucketStat, 0, len(wallBuckets))
	for name, b := range wallBuckets {
		out = append(out, WallBucketStat{Name: name, Seconds: b.total.Seconds(), Count: b.count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ResetWall clears the buckets (benchmarks isolating one pass's breakdown).
func ResetWall() {
	wallMu.Lock()
	wallBuckets = map[string]*wallBucket{}
	wallMu.Unlock()
}

// WallLine renders the buckets as one stats line, in the style of
// Store.StatsLine: where the run's non-stage wall time went.
func WallLine() string {
	stats := WallStats()
	if len(stats) == 0 {
		return "wall: no tracked regions"
	}
	var sb strings.Builder
	sb.WriteString("wall:")
	for _, b := range stats {
		fmt.Fprintf(&sb, " %s=%.2fs/%d", b.Name, b.Seconds, b.Count)
	}
	sb.WriteString(" time/calls")
	return sb.String()
}
