package pipeline

import "github.com/nofreelunch/gadget-planner/internal/wall"

// Wall buckets account for the suite wall time the per-stage store counters
// cannot see. A fully warm run still spends seconds outside stage
// computations — table rendering, payload verification inside the plan
// stage's closure, emulator replay in the netperf case study, fingerprint
// hashing — and BENCH_CACHE.json's "100% hits yet 5.1s" floor is exactly
// that unaccounted remainder. Callers wrap those regions with TrackWall and
// the CLIs print WallLine next to Store.StatsLine, turning the uncached
// floor into named numbers.
//
// The registry itself lives in internal/wall (a leaf package) so stages
// below pipeline in the import graph — gadget's predecode pass records the
// "decode" bucket — share the same registry; these aliases keep pipeline
// the API surface its callers already use.

// WallBucketStat is one named region's accumulated cost.
type WallBucketStat = wall.BucketStat

// TrackWall starts timing a named non-stage region and returns the stop
// function; use `defer TrackWall("render")()` around a region. Safe for
// concurrent use; nested and overlapping regions simply accumulate (the
// buckets are a breakdown, not a partition).
func TrackWall(name string) func() { return wall.Track(name) }

// WallStats snapshots the buckets, most expensive first (name-ordered on
// ties, so the rendering is deterministic for fixed durations).
func WallStats() []WallBucketStat { return wall.Stats() }

// ResetWall clears the buckets (benchmarks isolating one pass's breakdown).
func ResetWall() { wall.Reset() }

// WallLine renders the buckets as one stats line, in the style of
// Store.StatsLine: where the run's non-stage wall time went.
func WallLine() string { return wall.Line() }
