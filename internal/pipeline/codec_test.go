package pipeline

import (
	"bytes"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
)

// testPool extracts a real (obfuscated, so reasonably rich) gadget pool.
func testPool(t *testing.T) *gadget.Pool {
	t.Helper()
	s := NewStore()
	bin, err := Build(s, benchprog.Benchmarks()[0], obfuscate.LLVMObf(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return Extract(s, bin, gadget.Options{})
}

// TestPoolCodecRoundTrip pins the codec's two load-bearing properties on a
// real extracted pool: encoding is deterministic, and decode∘encode is the
// identity up to re-encoding — the decoded pool serializes to the exact
// bytes of the original, so its content (gadget records, effect DAGs,
// indexes, stats) is structurally indistinguishable from the computed
// pool's.
func TestPoolCodecRoundTrip(t *testing.T) {
	pool := testPool(t)
	if pool.Size() == 0 {
		t.Fatal("empty test pool")
	}

	enc1, ok := encodeArtifact(StageExtract, pool)
	if !ok {
		t.Fatal("pool did not encode")
	}
	enc1again, _ := encodeArtifact(StageExtract, pool)
	if !bytes.Equal(enc1, enc1again) {
		t.Fatal("pool encoding is not deterministic")
	}

	v, err := decodeArtifact(StageExtract, enc1)
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*gadget.Pool)

	if got.Size() != pool.Size() {
		t.Fatalf("decoded pool size %d, want %d", got.Size(), pool.Size())
	}
	if len(got.Syscalls) != len(pool.Syscalls) || len(got.ByReg) != len(pool.ByReg) {
		t.Errorf("decoded indexes: %d syscalls/%d regs, want %d/%d",
			len(got.Syscalls), len(got.ByReg), len(pool.Syscalls), len(pool.ByReg))
	}
	for i, g := range pool.Gadgets {
		d := got.Gadgets[i]
		if d.ID != g.ID || d.Location != g.Location || d.Len != g.Len ||
			d.JmpType != g.JmpType || d.Merged != g.Merged || d.HasCond != g.HasCond {
			t.Fatalf("gadget %d record differs: %+v vs %+v", i, d, g)
		}
		if len(d.Steps) != len(g.Steps) {
			t.Fatalf("gadget %d: %d steps, want %d", i, len(d.Steps), len(g.Steps))
		}
		for j := range g.Steps {
			if d.Steps[j] != g.Steps[j] {
				t.Fatalf("gadget %d step %d differs", i, j)
			}
		}
		if d.Effect.End != g.Effect.End || d.Effect.StackDelta != g.Effect.StackDelta {
			t.Fatalf("gadget %d effect shape differs", i)
		}
		for r := range g.Effect.Regs {
			if d.Effect.Regs[r].String() != g.Effect.Regs[r].String() {
				t.Fatalf("gadget %d reg %d effect differs:\n%s\nvs\n%s",
					i, r, d.Effect.Regs[r], g.Effect.Regs[r])
			}
		}
	}
	// Stats contains a map, so compare field-wise.
	if got.Stats.ScannedOffsets != pool.Stats.ScannedOffsets ||
		got.Stats.Supported != pool.Stats.Supported ||
		len(got.Stats.ByType) != len(pool.Stats.ByType) {
		t.Errorf("decoded stats %+v, want %+v", got.Stats, pool.Stats)
	}
	for k, n := range pool.Stats.ByType {
		if got.Stats.ByType[k] != n {
			t.Errorf("ByType[%v] = %d, want %d", k, got.Stats.ByType[k], n)
		}
	}

	enc2, ok := encodeArtifact(StageExtract, got)
	if !ok {
		t.Fatal("decoded pool did not re-encode")
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("re-encoded decoded pool differs from original encoding")
	}
}

func TestMinimizedCodecRoundTrip(t *testing.T) {
	pool := testPool(t)
	min, stats := subsume.Minimize(pool, subsume.Options{})
	art := Minimized{Pool: min, Stats: stats}

	enc1, ok := encodeArtifact(StageMinimize, art)
	if !ok {
		t.Fatal("minimized artifact did not encode")
	}
	v, err := decodeArtifact(StageMinimize, enc1)
	if err != nil {
		t.Fatal(err)
	}
	got := v.(Minimized)
	if got.Stats != stats {
		t.Errorf("decoded subsume stats %+v, want %+v", got.Stats, stats)
	}
	if got.Pool.Size() != min.Size() {
		t.Errorf("decoded minimized pool size %d, want %d", got.Pool.Size(), min.Size())
	}
	enc2, _ := encodeArtifact(StageMinimize, got)
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("re-encoded minimized artifact differs")
	}
}

func TestBinaryAndCountCodecRoundTrip(t *testing.T) {
	s := NewStore()
	bin, err := Build(s, benchprog.Benchmarks()[0], nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	enc1, ok := encodeArtifact(StageBuild, bin)
	if !ok {
		t.Fatal("binary did not encode")
	}
	v, err := decodeArtifact(StageBuild, enc1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v.(*sbf.Binary).Marshal(), bin.Marshal()) {
		t.Fatal("decoded binary differs")
	}

	counts := Count(s, bin, 10)
	cenc, ok := encodeArtifact(StageCount, counts)
	if !ok {
		t.Fatal("count map did not encode")
	}
	cv, err := decodeArtifact(StageCount, cenc)
	if err != nil {
		t.Fatal(err)
	}
	gotCounts := cv.(map[gadget.JmpType]int)
	if len(gotCounts) != len(counts) {
		t.Fatalf("decoded %d count classes, want %d", len(gotCounts), len(counts))
	}
	for k, n := range counts {
		if gotCounts[k] != n {
			t.Errorf("count[%v] = %d, want %d", k, gotCounts[k], n)
		}
	}
}

// TestDecodeArtifactRejectsGarbage: decoding never panics and never
// half-succeeds — malformed bytes are an error (which the disk tier turns
// into a miss).
func TestDecodeArtifactRejectsGarbage(t *testing.T) {
	pool := testPool(t)
	enc, _ := encodeArtifact(StageExtract, pool)
	for _, data := range [][]byte{
		nil,
		{},
		{0xff, 0xff, 0xff},
		enc[:len(enc)/2], // truncated
	} {
		for _, st := range []Stage{StageBuild, StageCount, StageExtract, StageMinimize, StagePlan} {
			if _, err := decodeArtifact(st, data); err == nil && len(data) > 0 {
				// Empty inputs can legitimately decode to empty
				// collections for some stages; anything else must fail.
				t.Errorf("stage %s decoded %d garbage bytes", st, len(data))
			}
		}
	}
	// Trailing junk after a valid artifact is corruption, not slack.
	if _, err := decodeArtifact(StageExtract, append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
