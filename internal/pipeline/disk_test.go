package pipeline

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/gadget"
)

func testCounts() map[gadget.JmpType]int {
	return map[gadget.JmpType]int{
		gadget.TypeReturn:  12,
		gadget.TypeUIJ:     5,
		gadget.TypeSyscall: 2,
	}
}

// listArtifacts returns every .art file under the cache directory.
func listArtifacts(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(p) == artSuffix {
			out = append(out, p)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDiskCrossProcess is the tentpole contract: a second store over the same
// directory — all in-memory state fresh, as in a new process — is served from
// disk without recomputing, and reports the original computation's cost.
func TestDiskCrossProcess(t *testing.T) {
	dir := t.TempDir()
	key := "count:bin:deadbeef|d:10"
	want := testCounts()

	d1, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewStore().WithDisk(d1)
	_, info1, err := Do(s1, StageCount, key, func() (map[gadget.JmpType]int, error) {
		return testCounts(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info1.Hit {
		t.Fatal("cold request reported a hit")
	}
	if n := len(listArtifacts(t, dir)); n != 1 {
		t.Fatalf("cold compute persisted %d artifacts, want 1", n)
	}

	// "Second process": fresh store, fresh disk handle, same directory.
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore().WithDisk(d2)
	got, info2, err := Do(s2, StageCount, key, func() (map[gadget.JmpType]int, error) {
		t.Error("compute ran despite persisted artifact")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Hit {
		t.Error("disk-served request did not report a hit")
	}
	if info2.Compute != info1.Compute || info2.AllocBytes != info1.AllocBytes {
		t.Errorf("disk hit cost %v/%d B, want original %v/%d B",
			info2.Compute, info2.AllocBytes, info1.Compute, info1.AllocBytes)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d classes, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("count[%v] = %d, want %d", k, got[k], n)
		}
	}
	stats := s2.Stats()[StageCount]
	if stats.DiskHits != 1 || stats.Misses != 0 {
		t.Errorf("second store: %d disk hits/%d misses, want 1/0", stats.DiskHits, stats.Misses)
	}
	if d2.Stats().BytesRead == 0 {
		t.Error("disk hit read zero bytes")
	}

	// Third request on the same store is a pure memory hit: the disk tier is
	// consulted only on in-memory misses.
	before := d2.Stats().BytesRead
	if _, info3, _ := Do(s2, StageCount, key, func() (map[gadget.JmpType]int, error) {
		t.Error("compute ran on warm store")
		return nil, nil
	}); !info3.Hit {
		t.Error("warm request missed")
	}
	if d2.Stats().BytesRead != before {
		t.Error("memory hit touched the disk tier")
	}
}

// TestDiskEvictionOrder pins LRU ordering under a tight budget: when a write
// pushes the directory over MaxBytes, the least-recently-used artifact (by
// mtime) is removed first.
func TestDiskEvictionOrder(t *testing.T) {
	payload := bytes.Repeat([]byte{0xab}, 1000)
	fileSize := int64(len(buildArtifactFile(StageBuild, "key:a", payload, diskMeta{})))

	dir := t.TempDir()
	// Room for two artifacts and change; the third write must evict one.
	d, err := OpenDisk(dir, DiskOptions{MaxBytes: 2*fileSize + fileSize/2})
	if err != nil {
		t.Fatal(err)
	}

	d.put(StageBuild, "key:a", payload, diskMeta{})
	d.put(StageBuild, "key:b", payload, diskMeta{})
	// Age a and b so recency is unambiguous: a is LRU, b next, c freshest.
	now := time.Now()
	if err := os.Chtimes(d.path(StageBuild, "key:a"), now.Add(-3*time.Hour), now.Add(-3*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(d.path(StageBuild, "key:b"), now.Add(-2*time.Hour), now.Add(-2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	d.put(StageBuild, "key:c", payload, diskMeta{})

	if _, err := os.Stat(d.path(StageBuild, "key:a")); !os.IsNotExist(err) {
		t.Error("LRU artifact a survived eviction")
	}
	for _, k := range []string{"key:b", "key:c"} {
		if _, err := os.Stat(d.path(StageBuild, k)); err != nil {
			t.Errorf("artifact %s evicted out of order: %v", k, err)
		}
	}
	st := d.Stats()
	if st.Evictions != 1 || st.EvictedBytes != fileSize {
		t.Errorf("evictions = %d (%d B), want 1 (%d B)", st.Evictions, st.EvictedBytes, fileSize)
	}
	if st.SizeBytes > d.maxBytes {
		t.Errorf("size %d still over budget %d", st.SizeBytes, d.maxBytes)
	}

	// A read refreshes recency: touch b by reading it, then overflow again —
	// c (now oldest) must go, not b.
	if _, _, ok := d.get(StageBuild, "key:b"); !ok {
		t.Fatal("read-back of b failed")
	}
	if err := os.Chtimes(d.path(StageBuild, "key:c"), now.Add(-1*time.Hour), now.Add(-1*time.Hour)); err != nil {
		t.Fatal(err)
	}
	d.put(StageBuild, "key:d", payload, diskMeta{})
	if _, err := os.Stat(d.path(StageBuild, "key:c")); !os.IsNotExist(err) {
		t.Error("second eviction did not pick the new LRU artifact c")
	}
	if _, err := os.Stat(d.path(StageBuild, "key:b")); err != nil {
		t.Error("recently read artifact b was evicted")
	}
}

// TestDiskCorruptRecovery: corrupt and truncated artifacts degrade to a miss
// — the value is recomputed, the bad file is deleted, and the fresh bytes are
// re-persisted. Never an error.
func TestDiskCorruptRecovery(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		"bitflip":  func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b },
		"truncate": func(b []byte) []byte { return b[:len(b)/3] },
		"empty":    func(b []byte) []byte { return nil },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			key := "count:bin:feedface|d:10"
			d1, err := OpenDisk(dir, DiskOptions{})
			if err != nil {
				t.Fatal(err)
			}
			s1 := NewStore().WithDisk(d1)
			if _, _, err := Do(s1, StageCount, key, func() (map[gadget.JmpType]int, error) {
				return testCounts(), nil
			}); err != nil {
				t.Fatal(err)
			}

			p := d1.path(StageCount, key)
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			d2, err := OpenDisk(dir, DiskOptions{})
			if err != nil {
				t.Fatal(err)
			}
			s2 := NewStore().WithDisk(d2)
			computed := false
			got, info, err := Do(s2, StageCount, key, func() (map[gadget.JmpType]int, error) {
				computed = true
				return testCounts(), nil
			})
			if err != nil {
				t.Fatalf("corrupt artifact surfaced as error: %v", err)
			}
			if !computed || info.Hit {
				t.Error("corrupt artifact was not treated as a miss")
			}
			if got[gadget.TypeReturn] != 12 {
				t.Error("recomputed value wrong")
			}
			if d2.Stats().Corrupt != 1 {
				t.Errorf("corrupt counter = %d, want 1", d2.Stats().Corrupt)
			}
			// The recompute re-persisted a valid artifact.
			fresh, err := os.ReadFile(p)
			if err != nil {
				t.Fatalf("artifact not re-persisted: %v", err)
			}
			if _, _, perr := parseArtifactFile(fresh, StageCount, key); perr != nil {
				t.Errorf("re-persisted artifact invalid: %v", perr)
			}
		})
	}
}

// TestDiskConcurrentWriters: many goroutines across two stores sharing one
// directory race on the same key. All observe the same value and the final
// file is a single valid artifact.
func TestDiskConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	key := "count:bin:cafebabe|d:10"
	stores := make([]*Store, 2)
	disks := make([]*Disk, 2)
	for i := range stores {
		d, err := OpenDisk(dir, DiskOptions{})
		if err != nil {
			t.Fatal(err)
		}
		disks[i] = d
		stores[i] = NewStore().WithDisk(d)
	}

	const workers = 8
	var wg sync.WaitGroup
	results := make([]map[gadget.JmpType]int, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = Do(stores[i%2], StageCount, key,
				func() (map[gadget.JmpType]int, error) { return testCounts(), nil })
		}(i)
	}
	wg.Wait()

	want := testCounts()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		for k, n := range want {
			if results[i][k] != n {
				t.Fatalf("worker %d saw count[%v] = %d, want %d", i, k, results[i][k], n)
			}
		}
	}

	arts := listArtifacts(t, dir)
	if len(arts) != 1 {
		t.Fatalf("%d artifacts on disk, want 1", len(arts))
	}
	data, err := os.ReadFile(arts[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, perr := parseArtifactFile(data, StageCount, key); perr != nil {
		t.Errorf("final artifact invalid after racing writers: %v", perr)
	}
	// No leftover claim or temp files.
	ents, _ := os.ReadDir(filepath.Dir(arts[0]))
	for _, e := range ents {
		if filepath.Ext(e.Name()) != artSuffix {
			t.Errorf("leftover write litter: %s", e.Name())
		}
	}
}

// TestDiskClaim: a live claim makes a writer skip (the holder persists the
// identical bytes); a stale claim from a crashed writer is broken.
func TestDiskClaim(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("payload")
	key := "key:claimed"
	p := d.path(StageBuild, key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	claim := p + claimSuffix
	if err := os.WriteFile(claim, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	d.put(StageBuild, key, payload, diskMeta{})
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Error("write proceeded under a live claim")
	}
	if d.Stats().WriteSkips != 1 {
		t.Errorf("write skips = %d, want 1", d.Stats().WriteSkips)
	}

	// Age the claim past the staleness TTL: it belongs to a crashed writer
	// and must be broken.
	old := time.Now().Add(-staleTTL - time.Minute)
	if err := os.Chtimes(claim, old, old); err != nil {
		t.Fatal(err)
	}
	d.put(StageBuild, key, payload, diskMeta{})
	if _, err := os.Stat(p); err != nil {
		t.Errorf("stale claim not broken: %v", err)
	}
}

// TestDisabledStoreIgnoresDisk: -nocache means no caching at all — WithDisk
// on a disabled store is a no-op and the directory stays empty.
func TestDisabledStoreIgnoresDisk(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewDisabledStore().WithDisk(d)
	if s.Disk() != nil {
		t.Error("disabled store kept a disk tier")
	}
	n := 0
	for i := 0; i < 2; i++ {
		if _, _, err := Do(s, StageCount, "count:k", func() (map[gadget.JmpType]int, error) {
			n++
			return testCounts(), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if n != 2 {
		t.Errorf("disabled store computed %d times, want 2", n)
	}
	if arts := listArtifacts(t, dir); len(arts) != 0 {
		t.Errorf("disabled store wrote %d artifacts", len(arts))
	}
}
