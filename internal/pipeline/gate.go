package pipeline

import (
	"sync/atomic"
)

// Gate bounds how many stage computations may run concurrently, per stage.
// It is the analysis service's backpressure mechanism: a store with an
// attached gate (Store.WithGate) admits at most `limit` simultaneous
// computations into each stage — build, extract, minimize, plan — and
// queues the rest, so a burst of client requests degrades into a bounded
// queue instead of an unbounded goroutine pile-up, and tail latency stays
// flat under load.
//
// The gate bounds *computations*, not requests: store hits (memory or disk
// metadata already decoded) never wait, and the singleflight layer still
// collapses concurrent identical requests to one slot. Queue waits are
// deliberately not cancelable — once a request is the designated computer
// of a shared artifact, other waiters may be depending on it, so it runs
// to completion (cancellation is checked between stages instead; see
// DoCtx).
type Gate struct {
	slots    [numStages]chan struct{}
	limits   [numStages]int
	queued   [numStages]atomic.Int64
	inflight [numStages]atomic.Int64
	admitted [numStages]atomic.Int64
}

// NewGate returns a gate admitting up to limit concurrent computations per
// stage. Overrides adjusts individual stages; a limit <= 0 (default or
// override) leaves that stage unbounded.
func NewGate(limit int, overrides map[Stage]int) *Gate {
	g := &Gate{}
	for st := Stage(0); st < numStages; st++ {
		l := limit
		if o, ok := overrides[st]; ok {
			l = o
		}
		if l > 0 {
			g.limits[st] = l
			g.slots[st] = make(chan struct{}, l)
		}
	}
	return g
}

// enter blocks until a compute slot for the stage is free. Nil-safe: a nil
// gate (no gate attached) admits everything immediately.
func (g *Gate) enter(st Stage) {
	if g == nil || g.slots[st] == nil {
		return
	}
	select {
	case g.slots[st] <- struct{}{}:
	default:
		g.queued[st].Add(1)
		g.slots[st] <- struct{}{}
		g.queued[st].Add(-1)
	}
	g.inflight[st].Add(1)
	g.admitted[st].Add(1)
}

// exit releases the stage slot taken by enter. Nil-safe.
func (g *Gate) exit(st Stage) {
	if g == nil || g.slots[st] == nil {
		return
	}
	g.inflight[st].Add(-1)
	<-g.slots[st]
}

// GateStats snapshots one stage's pool: its slot limit, how many
// computations hold slots right now, how many are queued waiting, and how
// many have been admitted in total. The serve /stats endpoint reports
// these per stage.
type GateStats struct {
	Stage    string `json:"stage"`
	Limit    int    `json:"limit"`
	InFlight int64  `json:"inflight"`
	Queued   int64  `json:"queued"`
	Admitted int64  `json:"admitted"`
}

// Stats snapshots every bounded stage, in chain order. Nil-safe (a nil
// gate reports nothing).
func (g *Gate) Stats() []GateStats {
	if g == nil {
		return nil
	}
	var out []GateStats
	for st := Stage(0); st < numStages; st++ {
		if g.slots[st] == nil {
			continue
		}
		out = append(out, GateStats{
			Stage:    st.String(),
			Limit:    g.limits[st],
			InFlight: g.inflight[st].Load(),
			Queued:   g.queued[st].Load(),
			Admitted: g.admitted[st].Load(),
		})
	}
	return out
}
