GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench 'Parallel' -benchtime 3x ./internal/gadget/ ./internal/subsume/

# CI gate: static checks plus the full test suite under the race detector.
check: vet race
