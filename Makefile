GO ?= go

.PHONY: build test vet race bench bench-solver bench-planner bench-cache bench-disk check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench 'Parallel' -benchtime 3x ./internal/gadget/ ./internal/subsume/

# Solver triage benchmark; writes BENCH_SOLVER.json next to BENCH_PIPELINE.json.
bench-solver:
	$(GO) run ./cmd/experiments -run solverbench

# Multi-goal planner benchmark (serial seed path vs cached parallel search);
# writes BENCH_PLANNER.json and cross-checks plan/payload identity.
bench-planner:
	$(GO) run ./cmd/experiments -run plannerbench

# Artifact-store benchmark: the deterministic experiment suite cold vs warm
# against one content-addressed store; writes BENCH_CACHE.json (suite
# wall-times, per-stage hit rates) and cross-checks that every rendered
# table is byte-identical between the two passes.
bench-cache:
	$(GO) run ./cmd/experiments -run cachebench -quick

# Persistent-store benchmark: the suite cold, warm in-process, and warm
# across processes (a fresh store reading a prior store's cache directory);
# writes BENCH_DISK.json and cross-checks table identity in every arm,
# including the -nodisk one.
bench-disk:
	$(GO) run ./cmd/experiments -run diskbench -quick

# CI gate: static checks, the full test suite under the race detector, and
# the benchmarks' built-in determinism/identity cross-checks.
check: vet race bench-planner bench-cache bench-disk
