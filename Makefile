GO ?= go

.PHONY: build test vet race bench bench-solver check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench 'Parallel' -benchtime 3x ./internal/gadget/ ./internal/subsume/

# Solver triage benchmark; writes BENCH_SOLVER.json next to BENCH_PIPELINE.json.
bench-solver:
	$(GO) run ./cmd/experiments -run solverbench

# CI gate: static checks plus the full test suite under the race detector.
check: vet race
