GO ?= go
GOFMT ?= gofmt

.PHONY: build test vet fmt race bench bench-solver bench-planner bench-cache bench-disk bench-stream bench-stream-quick bench-serve bench-serve-quick bench-extract bench-extract-quick bench-isa bench-isa-quick check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Formatting gate: fails listing any file gofmt would rewrite.
fmt:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

# The experiments package runs ~2.5 min without -race; with the race
# detector on a small machine it can exceed go test's default 10m
# per-package timeout, so give the suite explicit headroom.
race:
	$(GO) test -race -timeout 25m ./...

bench:
	$(GO) test -run xxx -bench 'Parallel' -benchtime 3x ./internal/gadget/ ./internal/subsume/

# Solver triage benchmark; writes BENCH_SOLVER.json next to BENCH_PIPELINE.json.
bench-solver:
	$(GO) run ./cmd/experiments -run solverbench

# Multi-goal planner benchmark (serial seed path vs cached parallel search);
# writes BENCH_PLANNER.json and cross-checks plan/payload identity.
bench-planner:
	$(GO) run ./cmd/experiments -run plannerbench

# Artifact-store benchmark: the deterministic experiment suite cold vs warm
# against one content-addressed store; writes BENCH_CACHE.json (suite
# wall-times, per-stage hit rates) and cross-checks that every rendered
# table is byte-identical between the two passes.
bench-cache:
	$(GO) run ./cmd/experiments -run cachebench -quick

# Persistent-store benchmark: the suite cold, warm in-process, and warm
# across processes (a fresh store reading a prior store's cache directory);
# writes BENCH_DISK.json and cross-checks table identity in every arm,
# including the -nodisk one.
bench-disk:
	$(GO) run ./cmd/experiments -run diskbench -quick

# Streaming corpus benchmark: a generated several-hundred-cell matrix fanned
# through the bounded-memory runner — cold, warm across processes at
# parallelism 1/2/8, and under a starved disk budget so the LRU evictor
# cycles; writes BENCH_STREAM.json + per-cell BENCH_STREAM.jsonl and
# cross-checks aggregate-table identity in every arm.
bench-stream:
	$(GO) run ./cmd/experiments -stream

bench-stream-quick:
	$(GO) run ./cmd/experiments -stream -quick

# Analysis-service benchmark: the request set per-process cold vs served by
# one warm shared gpd-style server over a unix socket, at client concurrency
# 1/4/16 plus an 8-way identical-submission dedup arm; writes
# BENCH_SERVE.json and cross-checks every response byte-identical to the
# local per-process reference.
bench-serve:
	$(GO) run ./cmd/experiments -run servebench

bench-serve-quick:
	$(GO) run ./cmd/experiments -run servebench -quick

# Cold-extraction benchmark: gadget extraction with the shared predecode
# table on vs off (the seed's decode-per-step walk) on obfuscated and
# virtualized netperf-sim builds; writes BENCH_EXTRACT.json and cross-checks
# pool identity across table on/off x parallelism 1/2/8 x stride 1/2.
bench-extract:
	$(GO) run ./cmd/experiments -run extractbench

bench-extract-quick:
	$(GO) run ./cmd/experiments -run extractbench -quick

# Multi-backend attack-surface benchmark: classic counts and extracted pool
# sizes per instruction-set backend (x64, rv64, rv64c) on original vs
# obfuscated builds; writes BENCH_ISA.json and cross-checks the C-extension
# claim (rv64c pools strictly larger than aligned rv64) plus per-backend
# pool identity across parallelism 1/2/8 x predecode table on/off.
bench-isa:
	$(GO) run ./cmd/experiments -run isabench

bench-isa-quick:
	$(GO) run ./cmd/experiments -run isabench -quick

# CI gate: formatting, static checks, the full test suite under the race
# detector, and the benchmarks' built-in determinism/identity cross-checks.
check: fmt vet race bench-planner bench-cache bench-disk bench-stream-quick bench-serve-quick bench-extract-quick bench-isa-quick
