module github.com/nofreelunch/gadget-planner

go 1.22
