// Package main's bench harness regenerates every table and figure of the
// paper as a testing.B benchmark (DESIGN.md's per-experiment index). Each
// benchmark runs its experiment once per iteration on a reduced corpus and
// reports headline numbers as custom metrics, so `go test -bench=.` both
// exercises and summarizes the reproduction.
package main

import (
	"testing"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/core"
	"github.com/nofreelunch/gadget-planner/internal/experiments"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
)

// benchOpts is the shared reduced-scope configuration.
func benchOpts() experiments.Options {
	return experiments.Options{
		Programs: benchprog.Benchmarks()[:3],
		Planner:  planner.Options{MaxPlans: 12, MaxNodes: 6000, Timeout: 15 * time.Second},
	}
}

// BenchmarkFig1GadgetCounts regenerates Fig. 1 (E1).
func BenchmarkFig1GadgetCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var orig, tig int
		for _, r := range rows {
			orig += r.Original
			tig += r.Tigress
		}
		b.ReportMetric(float64(orig), "gadgets-original")
		b.ReportMetric(float64(tig), "gadgets-tigress")
		b.ReportMetric(float64(tig)/float64(orig), "increase-x")
	}
}

// BenchmarkTable1GadgetTypes regenerates Table I (E2).
func BenchmarkTable1GadgetTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Type == gadget.TypeReturn {
				b.ReportMetric(r.IncreaseRate, "return-IR-pct")
			}
		}
	}
}

// BenchmarkTable4ToolComparison regenerates Table IV + Table V (E3, E4).
func BenchmarkTable4ToolComparison(b *testing.B) {
	opts := benchOpts()
	opts.Programs = benchprog.Benchmarks()[:1]
	for i := 0; i < b.N; i++ {
		rows, gp, err := experiments.Table4(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Obf == "LLVM-Obf" {
				switch r.Tool {
				case "Gadget-Planner":
					b.ReportMetric(float64(r.Total), "gp-payloads")
				case "SGC":
					b.ReportMetric(float64(r.Total), "sgc-payloads")
				case "Angrop":
					b.ReportMetric(float64(r.Total), "angrop-payloads")
				case "ROPGadget":
					b.ReportMetric(float64(r.Total), "ropgadget-payloads")
				}
			}
		}
		stats := experiments.Table5(gp)
		b.ReportMetric(stats[0].Stats.AvgChainLen, "gp-chain-len")
	}
}

// BenchmarkFig5PerObfuscation regenerates Fig. 5 (E5).
func BenchmarkFig5PerObfuscation(b *testing.B) {
	opts := benchOpts()
	opts.Programs = benchprog.Benchmarks()[:1]
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Gadgets), r.Pass+"-gadgets")
		}
	}
}

// BenchmarkTable6Spec regenerates Table VI (E6) on one SPEC-style program.
func BenchmarkTable6Spec(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table6(opts)
		if err != nil {
			b.Fatal(err)
		}
		var gp int
		for _, r := range rows {
			gp += r.GP
		}
		b.ReportMetric(float64(gp), "gp-chains")
	}
}

// BenchmarkTable7Performance regenerates Table VII (E8).
func BenchmarkTable7Performance(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table7(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Tool == "Gadget-Planner" && r.Stage == "total" {
				b.ReportMetric(r.Seconds, "gp-total-sec")
			}
		}
	}
}

// BenchmarkNetperfCaseStudy regenerates the Section VI-C case study (E7).
func BenchmarkNetperfCaseStudy(b *testing.B) {
	opts := experiments.Options{
		Planner: planner.Options{MaxPlans: 16, MaxNodes: 8000, Timeout: 20 * time.Second},
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Netperf(opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.ExploitWorks {
			b.Fatal("exploit failed")
		}
		b.ReportMetric(float64(res.Payloads), "payloads")
	}
}

// BenchmarkAblationSubsumption regenerates E9.
func BenchmarkAblationSubsumption(b *testing.B) {
	opts := benchOpts()
	opts.Programs = benchprog.Benchmarks()[:1]
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSubsumption(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ReductionFactor, "reduction-x")
	}
}

// BenchmarkAblationGadgetClasses regenerates E10.
func BenchmarkAblationGadgetClasses(b *testing.B) {
	opts := benchOpts()
	opts.Programs = benchprog.Benchmarks()[:1]
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationGadgetClasses(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Config == "all-classes" {
				b.ReportMetric(float64(r.Payloads), "all-classes")
			}
			if r.Config == "no-deref" {
				b.ReportMetric(float64(r.Payloads), "no-deref")
			}
		}
	}
}

// Micro-benchmarks of the pipeline stages on a fixed obfuscated binary.

func obfuscatedCRC(b *testing.B) *gadget.Pool {
	b.Helper()
	p, _ := benchprog.ByName("crc")
	bin, err := benchprog.Build(p, obfuscate.LLVMObf(), 42)
	if err != nil {
		b.Fatal(err)
	}
	return gadget.Extract(bin, gadget.Options{})
}

// BenchmarkStageExtraction measures stage 1 on obfuscated crc.
func BenchmarkStageExtraction(b *testing.B) {
	p, _ := benchprog.ByName("crc")
	bin, err := benchprog.Build(p, obfuscate.LLVMObf(), 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := gadget.Extract(bin, gadget.Options{})
		b.ReportMetric(float64(pool.Size()), "gadgets")
	}
}

// BenchmarkStageSubsumption measures stage 2.
func BenchmarkStageSubsumption(b *testing.B) {
	pool := obfuscatedCRC(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		min, _ := subsume.Minimize(pool, subsume.Options{})
		b.ReportMetric(float64(min.Size()), "kept")
	}
}

// BenchmarkStagePlanning measures stages 3–4 end to end.
func BenchmarkStagePlanning(b *testing.B) {
	p, _ := benchprog.ByName("crc")
	bin, err := benchprog.Build(p, obfuscate.LLVMObf(), 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.Analyze(bin, core.Config{Planner: planner.Options{MaxPlans: 8, MaxNodes: 4000}})
		atk := a.FindPayloads(planner.ExecveGoal())
		b.ReportMetric(float64(len(atk.Payloads)), "payloads")
	}
}

// BenchmarkCompileObfuscate measures the toolchain substrate.
func BenchmarkCompileObfuscate(b *testing.B) {
	p, _ := benchprog.ByName("crc")
	for i := 0; i < b.N; i++ {
		if _, err := benchprog.Build(p, obfuscate.Tigress(), 42); err != nil {
			b.Fatal(err)
		}
	}
}
