// The paper's Section VI-C case study, end to end: a netperf-like network
// tool with the Fig. 7 break_args stack overflow is compiled with
// Obfuscator-LLVM-style passes; the exploit is developed the way a real
// attacker would — cyclic-pattern crash analysis discovers the overflow
// geometry, Gadget-Planner builds payloads for the discovered stack
// address, and the final request is delivered through the program's own
// input path until the emulator observes execve("/bin/sh").
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/experiments"
	"github.com/nofreelunch/gadget-planner/internal/planner"
)

func main() {
	res, err := experiments.Netperf(experiments.Options{
		Planner: planner.Options{MaxPlans: 20, MaxNodes: 10000, Timeout: 30 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== netperf-sim case study (LLVM-Obf build) ==")
	fmt.Printf("crash analysis: return address %d bytes into the option buffer, slot at %#x\n",
		res.Offset, res.StackBase)
	fmt.Printf("Gadget-Planner: %d verified execve payloads (paper: 16)\n", res.Payloads)
	if !res.ExploitWorks {
		log.Fatal("exploit did not fire")
	}
	fmt.Printf("\nexploit request: %d bytes over the wire\n", len(res.ExploitStdin))
	fmt.Println("result: execve(\"/bin/sh\") observed in the emulator ✓")
	fmt.Printf("\nchain used (the paper's Fig. 8 analogue):\n%s", res.ChainExample)
}
