// Using the embedded SMT solver directly: the bitvector term language,
// satisfiability with models, implication, and the subsumption-style
// equivalence queries Gadget-Planner issues (the repository's Z3 stand-in).
package main

import (
	"fmt"
	"log"

	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/solver"
)

func main() {
	b := expr.NewBuilder()
	s := solver.Default()

	// 1. Find x, y with x + y == 10 and x * y == 21 (8-bit).
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	sys := b.BAnd(
		b.Eq(b.Add(x, y), b.Const(10, 8)),
		b.Eq(b.Mul(x, y), b.Const(21, 8)),
	)
	res, model := s.Check(sys)
	fmt.Printf("x+y=10 && x*y=21: %v, model x=%d y=%d\n", res, model["x"], model["y"])

	// 2. Prove an obfuscator identity: a ^ b == (~a & b) | (a & ~b), 64-bit.
	a64 := b.Var("a", 64)
	b64 := b.Var("b", 64)
	lhs := b.Xor(a64, b64)
	rhs := b.Or(b.And(b.Not(a64), b64), b.And(a64, b.Not(b64)))
	fmt.Printf("xor identity valid: %v\n", s.EquivalentBV(b, lhs, rhs))

	// 3. The paper's subsumption check (eq. 1): pre2 -> pre1 with
	//    pre1 = true (unconditional gadget) and pre2 = (rdx == rbx).
	pre1 := b.True()
	pre2 := b.Eq(b.Var("rdx0", 64), b.Var("rbx0", 64))
	fmt.Printf("conditional gadget subsumed by unconditional: %v\n",
		s.Implies(b, pre2, pre1))
	fmt.Printf("converse (must be false): %v\n", s.Implies(b, pre1, pre2))

	// 4. A payload-style slot equation: find the stack cell value that makes
	//    rdi == address of "/bin/sh" after rdi = slot ^ 0xFFFF.
	slot := b.Var("cell_16", 64)
	rdi := b.Xor(slot, b.Const(0xFFFF, 64))
	target := uint64(0x7FFF8230)
	res, model = s.Check(b.Eq(rdi, b.Const(target, 64)))
	if res != solver.Sat {
		log.Fatal("slot equation unsat?")
	}
	fmt.Printf("slot value: %#x (check: %#x)\n", model["cell_16"], model["cell_16"]^0xFFFF)

	fmt.Printf("\nsolver issued %d queries, %d conflicts\n", s.Queries, s.Conflicts)
}
