// Obfuscation study: how much attack surface does each obfuscation add?
// Reproduces the shapes of the paper's Fig. 1 (gadget counts) and its
// pool-composition finding: conditional-jump and indirect-jump gadgets are
// essentially absent from plain builds and abundant after obfuscation.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/experiments"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/planner"
)

func main() {
	opts := experiments.Options{
		Programs: benchprog.Benchmarks()[:4],
		Planner:  planner.Options{MaxPlans: 8, MaxNodes: 4000, Timeout: 10 * time.Second},
	}

	fmt.Println("== Fig. 1: gadget counts per build ==")
	rows, err := experiments.Fig1(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderFig1(rows))

	fmt.Println("\n== pool composition: gadget classes per build ==")
	comp, err := experiments.PoolComposition(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderPoolComposition(comp))

	fmt.Println("\n== per-pass gadget counts (Fig. 5 axis) ==")
	p := benchprog.Benchmarks()[0]
	plain, err := benchprog.Build(p, nil, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %8d gadgets (%6d bytes)\n", "none",
		gadget.TotalCount(gadget.Count(plain, 10)), plain.CodeSize())
	for _, name := range obfuscate.AllPassNames() {
		pass, err := obfuscate.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		bin, err := benchprog.Build(p, []obfuscate.Pass{pass}, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %8d gadgets (%6d bytes)\n", name,
			gadget.TotalCount(gadget.Count(bin, 10)), bin.CodeSize())
	}
}
