// Quickstart: compile a small MiniC program, obfuscate it the way the
// study does, run Gadget-Planner's four-stage pipeline on the binary, and
// verify a generated execve payload in the emulator.
package main

import (
	"fmt"
	"log"

	"github.com/nofreelunch/gadget-planner/internal/codegen"
	"github.com/nofreelunch/gadget-planner/internal/core"
	"github.com/nofreelunch/gadget-planner/internal/mir"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/payload"
	"github.com/nofreelunch/gadget-planner/internal/planner"
)

const victim = `
int secret(int x) {
    int acc = 0;
    int i;
    for (i = 0; i < x; i++) acc = acc * 31 + i;
    return acc;
}

int main() {
    print_int(secret(20));
    print_char('\n');
    return 0;
}
`

func main() {
	// 1. Compile with Obfuscator-LLVM-style passes (substitution, bogus
	//    control flow, flattening).
	bin, err := codegen.BuildProgram(victim, func(m *mir.Module) error {
		return obfuscate.Apply(m, 7, obfuscate.LLVMObf()...)
	}, codegen.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("obfuscated binary: %d bytes of code\n", bin.CodeSize())

	// Sanity: the obfuscated program still behaves.
	out, err := codegen.Run(bin, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %s", out.Stdout)

	// 2. Stages 1–2: extract gadgets and minimize the pool.
	analysis := core.Analyze(bin, core.Config{})
	fmt.Printf("gadget pool: %d raw -> %d after subsumption (%.2fx)\n",
		analysis.SubsumeStats.Before, analysis.SubsumeStats.After,
		analysis.SubsumeStats.ReductionFactor())

	// 3. Stages 3–4: plan and build execve("/bin/sh") payloads; every
	//    returned payload has already fired in the emulator.
	attack := analysis.FindPayloads(planner.ExecveGoal())
	fmt.Printf("verified execve payloads: %d\n", len(attack.Payloads))
	if len(attack.Payloads) == 0 {
		log.Fatal("no payloads found")
	}

	pl := attack.Payloads[0]
	fmt.Printf("\nfirst chain (%d bytes of payload):\n", len(pl.Bytes))
	for i, g := range pl.Chain {
		fmt.Printf("  gadget %d: %s\n", i+1, g)
	}

	// 4. Re-verify explicitly, then show the stack layout.
	if err := payload.Verify(bin, pl, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nemulator re-verification: execve(\"/bin/sh\", 0, 0) fired ✓")
}
