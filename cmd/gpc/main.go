// Command gpc compiles MiniC programs to SBF executables, optionally
// applying obfuscation passes — the repository's counterpart of running
// gcc/Obfuscator-LLVM/Tigress in the paper's pipeline.
//
// Usage:
//
//	gpc -src prog.c -o prog.sbf [-obf llvm|tigress|sub,bcf,fla,enc,virt] [-seed 42] [-run]
//	gpc -prog crc -o crc.sbf -obf tigress -run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/cliutil"
	"github.com/nofreelunch/gadget-planner/internal/codegen"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gpc:", err)
		os.Exit(1)
	}
}

func run() error {
	srcPath := flag.String("src", "", "MiniC source file")
	progName := flag.String("prog", "", "built-in benchmark program name (see -list)")
	out := flag.String("o", "", "output SBF path")
	obfSpec := flag.String("obf", "", "obfuscation: llvm, tigress, or comma-separated passes (sub,bcf,fla,enc,virt)")
	seed := flag.Int64("seed", 42, "obfuscation seed")
	execute := flag.Bool("run", false, "run the binary in the emulator after building")
	selfmod := flag.Int("selfmod", 0, "apply self-modification with this XOR key (1-255; x64 builds only)")
	list := flag.Bool("list", false, "list built-in benchmark programs")
	isaFlag := cliutil.ISAFlag(flag.CommandLine)
	sf := cliutil.RegisterStore(flag.CommandLine)
	flag.Parse()

	isaName, err := cliutil.ResolveISA(*isaFlag)
	if err != nil {
		return err
	}

	if *list {
		for _, p := range benchprog.All() {
			fmt.Printf("%-14s %s\n", p.Name, p.Description)
		}
		return nil
	}

	prog := benchprog.Program{Name: "cli"}
	switch {
	case *srcPath != "":
		data, err := os.ReadFile(*srcPath)
		if err != nil {
			return err
		}
		prog.Name, prog.Source = *srcPath, string(data)
	case *progName != "":
		p, ok := benchprog.ByName(*progName)
		if !ok {
			return fmt.Errorf("unknown program %q (try -list)", *progName)
		}
		prog = p
	default:
		return fmt.Errorf("need -src or -prog")
	}

	passes, err := obfuscate.ParseSpec(*obfSpec)
	if err != nil {
		return err
	}
	if *selfmod != 0 && isaName != "" && isaName != "x64" {
		return fmt.Errorf("-selfmod is an x64-only transform (isa %q)", isaName)
	}

	// Build through the same staged pipeline the experiments use. A CLI
	// invocation is a one-shot in-memory store, but with -cachedir (or
	// GP_CACHE_DIR) the persistent tier carries builds across invocations.
	store, err := sf.Open()
	if err != nil {
		return err
	}
	bin, _, err := pipeline.BuildISACtx(context.Background(), store, prog, passes, *seed, isaName)
	if err != nil {
		return err
	}
	if *selfmod != 0 {
		bin, err = pipeline.SelfModify(store, bin, byte(*selfmod))
		if err != nil {
			return err
		}
	}
	fmt.Printf("built: text=%d bytes, entry=%#x, %d symbols\n",
		bin.CodeSize(), bin.Entry, len(bin.Symbols))

	if *out != "" {
		if err := os.WriteFile(*out, bin.Marshal(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *execute {
		res, err := codegen.Run(bin, nil, 0)
		if err != nil {
			return err
		}
		fmt.Printf("--- stdout ---\n%s--- exit %d (%d steps) ---\n",
			res.Stdout, res.ExitCode, res.Steps)
	}
	return nil
}
