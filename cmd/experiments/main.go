// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all [-quick]
//	experiments -run fig1,table4,netperf
//
// Experiments: fig1, table1, table4 (includes table5), fig5, table6,
// table7, netperf, composition, ablation, pipeline (writes
// BENCH_PIPELINE.json), solverbench (writes BENCH_SOLVER.json),
// plannerbench (writes BENCH_PLANNER.json), cachebench (writes
// BENCH_CACHE.json), diskbench (writes BENCH_DISK.json), servebench (the
// analysis-service benchmark; writes BENCH_SERVE.json), extractbench (the
// cold-extraction benchmark; writes BENCH_EXTRACT.json), isabench (the
// multi-backend attack-surface benchmark; writes BENCH_ISA.json), stream (the
// generated-corpus scale-out benchmark; writes BENCH_STREAM.json and a
// per-cell BENCH_STREAM.jsonl; also reachable as the -stream shorthand,
// with -cells sizing the corpus and -cachesize starving the eviction arm).
//
// All experiments of one invocation share a content-addressed artifact
// store, so a build, gadget scan, extraction, or minimized pool computed by
// one experiment is reused by every later one; -nocache disables the store
// for A/B comparison (results are identical). With -cachedir (or
// GP_CACHE_DIR) the store is additionally backed by a persistent disk tier,
// so artifacts survive across invocations; -nodisk disables just the disk
// tier for A/B comparison (results are identical).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/cliutil"
	"github.com/nofreelunch/gadget-planner/internal/experiments"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/planner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	which := flag.String("run", "all", "comma-separated experiments, or all")
	quick := flag.Bool("quick", false, "trim the corpus for a fast pass")
	seed := flag.Int64("seed", 42, "obfuscation seed")
	benchJSON := flag.String("benchjson", "BENCH_PIPELINE.json", "output path for the pipeline benchmark")
	solverJSON := flag.String("solverjson", "BENCH_SOLVER.json", "output path for the solver triage benchmark")
	plannerJSON := flag.String("plannerjson", "BENCH_PLANNER.json", "output path for the planner benchmark")
	cacheJSON := flag.String("cachejson", "BENCH_CACHE.json", "output path for the artifact-store benchmark")
	diskJSON := flag.String("diskjson", "BENCH_DISK.json", "output path for the persistent-store benchmark")
	serveJSON := flag.String("servejson", "BENCH_SERVE.json", "output path for the analysis-service benchmark")
	sf := cliutil.RegisterStore(flag.CommandLine).WithParallel(flag.CommandLine)
	stream := flag.Bool("stream", false, "shorthand for -run stream: the generated-corpus streaming benchmark")
	cells := flag.Int("cells", 0, "stream: target cell count (0 = 216, or 24 with -quick)")
	cacheSize := flag.Int64("cachesize", 0, "stream: eviction-arm disk budget in bytes (0 = 256 KiB)")
	streamJSON := flag.String("streamjson", "BENCH_STREAM.json", "output path for the streaming corpus benchmark")
	streamJSONL := flag.String("streamjsonl", "BENCH_STREAM.jsonl", "output path for the streaming per-cell rows")
	extractJSON := flag.String("extractjson", "BENCH_EXTRACT.json", "output path for the cold-extraction benchmark")
	isaJSON := flag.String("isajson", "BENCH_ISA.json", "output path for the multi-backend attack-surface benchmark")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file (go tool pprof)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	store, err := sf.Open()
	if err != nil {
		return err
	}
	opts := experiments.Options{Seed: *seed, Quick: *quick, Parallelism: sf.Parallelism(), Store: store}
	if *quick {
		opts.Programs = benchprog.Benchmarks()[:3]
		opts.Planner = planner.Options{MaxPlans: 12, MaxNodes: 6000, Timeout: 15 * time.Second}
	}

	runSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "run" {
			runSet = true
		}
	})
	selected := map[string]bool{}
	for _, name := range strings.Split(*which, ",") {
		selected[strings.TrimSpace(name)] = true
	}
	if *stream {
		// Bare -stream runs only the stream benchmark; combined with an
		// explicit -run it adds stream to that selection.
		if !runSet {
			selected = map[string]bool{}
		}
		selected["stream"] = true
	}
	// The stream benchmark is opt-in: it is not part of -run all (its
	// corpus dwarfs the paper experiments').
	want := func(name string) bool { return selected["all"] || selected[name] }

	if want("fig1") {
		rows, err := experiments.Fig1(opts)
		if err != nil {
			return err
		}
		section("Fig. 1 — gadget counts, original vs obfuscated")
		fmt.Print(experiments.RenderFig1(rows))
	}
	if want("table1") {
		rows, err := experiments.Table1(opts)
		if err != nil {
			return err
		}
		section("Table I — gadget classes and increase rate")
		fmt.Print(experiments.RenderTable1(rows))
	}
	if want("table4") {
		rows, gp, err := experiments.Table4(opts)
		if err != nil {
			return err
		}
		section("Table IV — tools x obfuscations payload matrix")
		fmt.Print(experiments.RenderTable4(rows))
		section("Table V — chain properties (Gadget-Planner)")
		fmt.Print(experiments.RenderTable5(experiments.Table5(gp)))
	}
	if want("composition") {
		rows, err := experiments.PoolComposition(opts)
		if err != nil {
			return err
		}
		section("Pool composition — gadget classes available per build")
		fmt.Print(experiments.RenderPoolComposition(rows))
	}
	if want("fig5") {
		rows, err := experiments.Fig5(opts)
		if err != nil {
			return err
		}
		section("Fig. 5 — per-obfuscation attack surface")
		fmt.Print(experiments.RenderFig5(rows))
	}
	if want("table6") {
		rows, err := experiments.Table6(opts)
		if err != nil {
			return err
		}
		section("Table VI — SPEC-style programs")
		fmt.Print(experiments.RenderTable6(rows))
	}
	if want("table7") {
		rows, err := experiments.Table7(opts)
		if err != nil {
			return err
		}
		section("Table VII — per-stage performance (obfuscated netperf)")
		fmt.Print(experiments.RenderTable7(rows))
	}
	if want("netperf") {
		res, err := experiments.Netperf(opts)
		if err != nil {
			return err
		}
		section("Section VI-C — netperf case study")
		fmt.Print(experiments.RenderNetperf(res))
		fmt.Println()
	}
	if want("pipeline") {
		res, err := experiments.BenchPipeline(opts)
		if err != nil {
			return err
		}
		section("Pipeline benchmark — serial vs parallel analysis")
		fmt.Print(experiments.RenderPipelineBench(res))
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	if want("solverbench") {
		res, err := experiments.BenchSolver(opts)
		if err != nil {
			return err
		}
		section("Solver benchmark — verdict-query triage")
		fmt.Print(experiments.RenderSolverBench(res))
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*solverJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *solverJSON)
	}
	if want("plannerbench") {
		res, err := experiments.BenchPlanner(opts)
		if err != nil {
			return err
		}
		section("Planner benchmark — multi-goal planning, serial vs parallel")
		fmt.Print(experiments.RenderPlannerBench(res))
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*plannerJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *plannerJSON)
	}
	if want("ablation") {
		sub, err := experiments.AblationSubsumption(opts)
		if err != nil {
			return err
		}
		section("Ablation — subsumption testing")
		fmt.Print(experiments.RenderAblationSubsumption(sub))
		cls, err := experiments.AblationGadgetClasses(opts)
		if err != nil {
			return err
		}
		section("Ablation — gadget classes")
		fmt.Print(experiments.RenderAblationClasses(cls))
	}
	if want("cachebench") {
		res, err := experiments.BenchCache(opts)
		if err != nil {
			return err
		}
		section("Cache benchmark — artifact store, cold vs warm")
		fmt.Print(experiments.RenderCacheBench(res))
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*cacheJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *cacheJSON)
	}
	if want("diskbench") {
		res, err := experiments.BenchDisk(opts)
		if err != nil {
			return err
		}
		section("Disk benchmark — persistent store, cold vs warm across processes")
		fmt.Print(experiments.RenderDiskBench(res))
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*diskJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *diskJSON)
	}
	if want("servebench") {
		res, err := experiments.BenchServe(opts)
		if err != nil {
			return err
		}
		section("Serve benchmark — shared analysis service, cold vs warm, N clients")
		fmt.Print(experiments.RenderServeBench(res))
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*serveJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *serveJSON)
	}
	if want("extractbench") {
		res, err := experiments.BenchExtract(opts)
		if err != nil {
			return err
		}
		section("Extraction benchmark — cold path, predecode table on vs off")
		fmt.Print(experiments.RenderExtractBench(res))
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*extractJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *extractJSON)
	}
	if want("isabench") {
		res, err := experiments.BenchISA(opts)
		if err != nil {
			return err
		}
		section("ISA benchmark — attack surface per backend, aligned vs compressed")
		fmt.Print(experiments.RenderISABench(res))
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*isaJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *isaJSON)
	}
	if selected["stream"] {
		rowsFile, err := os.Create(*streamJSONL)
		if err != nil {
			return err
		}
		res, err := experiments.BenchStream(experiments.StreamOptions{
			Cells:       *cells,
			Seed:        *seed,
			Parallelism: sf.Parallelism(),
			Rows:        rowsFile,
			Quick:       *quick,
		}, *cacheSize)
		rowsFile.Close()
		if err != nil {
			return err
		}
		section("Stream benchmark — generated corpus, bounded-memory runner")
		fmt.Print(experiments.RenderStreamBench(res))
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*streamJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (per-cell rows in %s)\n", *streamJSON, *streamJSONL)
	}
	fmt.Printf("\n%s\n%s\n", store.StatsLine(), pipeline.WallLine())
	return nil
}

func section(title string) {
	fmt.Printf("\n===== %s =====\n", title)
}
