// Command gpd is the long-running analysis service: one process keeps the
// artifact store warm and serves gadget-count/analyze/plan requests from N
// clients over HTTP (TCP and/or a unix socket). Concurrent identical
// requests collapse onto a single execution, overlapping requests dedup
// per stage through the store's singleflight, and a per-stage gate bounds
// compute concurrency so a burst of clients queues instead of oversubscribing.
//
// Usage:
//
//	gpd -socket /tmp/gpd.sock [-listen :7209] [-cachedir DIR] [-parallel N]
//	    [-pprof localhost:6060]
//
// Clients: gp -server unix:/tmp/gpd.sock ..., gadgetcount -server ...,
// or any HTTP client POSTing JSON to /run (the response is a JSONL stream
// of stage events followed by the result). GET /stats reports per-stage
// hit rates, pool depths, and dedup counters; GET /healthz flips to 503
// while draining. SIGTERM/SIGINT starts a graceful drain: new requests are
// refused, in-flight ones finish (up to -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the -pprof listener's DefaultServeMux
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/cliutil"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gpd:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "", "TCP listen address (e.g. :7209; empty disables TCP)")
	socket := flag.String("socket", "", "unix socket path (empty disables the socket listener)")
	pool := flag.Int("pool", 0, "per-stage compute slots (0 = same as -parallel)")
	memLimit := flag.Int("memlimit", 0, "memory-tier entry limit, LRU-evicted (0 = unbounded)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain window after SIGTERM before in-flight work is canceled")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	sf := cliutil.RegisterStore(flag.CommandLine).WithParallel(flag.CommandLine)
	flag.Parse()

	if *pprofAddr != "" {
		// The service mux is private (serve.Server.Handler); profiling gets
		// its own listener on the DefaultServeMux that net/http/pprof
		// registered on, so /debug/pprof never shares a port with clients.
		go func() {
			log.Printf("gpd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("gpd: pprof listener: %v", err)
			}
		}()
	}

	if *listen == "" && *socket == "" {
		return fmt.Errorf("need -listen and/or -socket")
	}

	store, err := sf.Open()
	if err != nil {
		return err
	}
	par := sf.Parallelism()
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	slots := *pool
	if slots <= 0 {
		slots = par
	}
	store.WithGate(pipeline.NewGate(slots, nil))
	if *memLimit > 0 {
		store.LimitMemory(*memLimit)
	}

	srv := serve.NewServer(store, par)
	// Computations run under this context, not per-request contexts: shared
	// artifacts must not die with the client that happened to start them.
	// It is canceled only when the drain window expires.
	computeCtx, cancelCompute := context.WithCancel(context.Background())
	defer cancelCompute()
	srv.BaseContext = computeCtx

	hsrv := &http.Server{Handler: srv.Handler()}
	var listeners []net.Listener
	if *socket != "" {
		// A stale socket file from an unclean shutdown would block the bind.
		if err := os.Remove(*socket); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		l, err := net.Listen("unix", *socket)
		if err != nil {
			return err
		}
		defer os.Remove(*socket)
		listeners = append(listeners, l)
		log.Printf("gpd: serving on unix:%s", *socket)
	}
	if *listen != "" {
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		listeners = append(listeners, l)
		log.Printf("gpd: serving on %s", l.Addr())
	}
	log.Printf("gpd: parallelism=%d pool=%d %s", par, slots, store.StatsLine())

	serveErr := make(chan error, len(listeners))
	for _, l := range listeners {
		go func(l net.Listener) { serveErr <- hsrv.Serve(l) }(l)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}

	// Graceful drain: refuse new work, let in-flight requests finish, then
	// cancel whatever is still computing when the window closes.
	log.Printf("gpd: draining (up to %s)...", *drain)
	srv.SetDraining(true)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := hsrv.Shutdown(dctx)
	cancelCompute()
	log.Printf("gpd: %s", store.StatsLine())
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		return shutdownErr
	}
	return nil
}
