// Command gadgetcount reports gadget statistics for a binary or a built-in
// benchmark across obfuscation configurations — the data behind the paper's
// Fig. 1 and Table I.
//
// Usage:
//
//	gadgetcount -bin prog.sbf
//	gadgetcount -prog crc            # original vs LLVM-Obf vs Tigress
//
// Builds and scans run through the shared artifact store; with -cachedir
// (or GP_CACHE_DIR) they persist across invocations, like the other CLIs.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gadgetcount:", err)
		os.Exit(1)
	}
}

var classes = []gadget.JmpType{
	gadget.TypeReturn, gadget.TypeUDJ, gadget.TypeUIJ,
	gadget.TypeCDJ, gadget.TypeCIJ, gadget.TypeSyscall,
}

func run() error {
	binPath := flag.String("bin", "", "SBF binary")
	progName := flag.String("prog", "", "built-in benchmark to compare across obfuscations")
	seed := flag.Int64("seed", 42, "obfuscation seed")
	noCache := flag.Bool("nocache", false, "disable the artifact store (A/B benchmarking; results are identical)")
	cacheDir := flag.String("cachedir", os.Getenv("GP_CACHE_DIR"), "persistent artifact cache directory (default $GP_CACHE_DIR; empty disables the disk tier)")
	noDisk := flag.Bool("nodisk", false, "disable the persistent cache tier even with -cachedir set (A/B benchmarking; results are identical)")
	flag.Parse()

	store := pipeline.NewStore()
	if *noCache {
		store = pipeline.NewDisabledStore()
	}
	if *cacheDir != "" && !*noDisk && !*noCache {
		disk, err := pipeline.OpenDisk(*cacheDir, pipeline.DiskOptions{})
		if err != nil {
			return err
		}
		store.WithDisk(disk)
	}

	if *binPath != "" {
		data, err := os.ReadFile(*binPath)
		if err != nil {
			return err
		}
		bin, err := sbf.Unmarshal(data)
		if err != nil {
			return err
		}
		report(store, *binPath, bin)
		return nil
	}
	if *progName == "" {
		return fmt.Errorf("need -bin or -prog")
	}
	p, ok := benchprog.ByName(*progName)
	if !ok {
		return fmt.Errorf("unknown program %q", *progName)
	}
	for _, cfg := range []struct {
		name   string
		passes []obfuscate.Pass
	}{
		{"original", nil},
		{"llvm-obf", obfuscate.LLVMObf()},
		{"tigress", obfuscate.Tigress()},
	} {
		bin, err := pipeline.Build(store, p, cfg.passes, *seed)
		if err != nil {
			return err
		}
		report(store, fmt.Sprintf("%s/%s", *progName, cfg.name), bin)
	}
	return nil
}

func report(store *pipeline.Store, label string, bin *sbf.Binary) {
	counts := pipeline.Count(store, bin, 10)
	fmt.Printf("%s: text=%d bytes, %d gadgets\n", label, bin.CodeSize(), gadget.TotalCount(counts))
	for _, t := range classes {
		fmt.Printf("  %-8s %7d\n", t, counts[t])
	}
}
