// Command gadgetcount reports gadget statistics for a binary or a built-in
// benchmark across obfuscation configurations — the data behind the paper's
// Fig. 1 and Table I.
//
// Usage:
//
//	gadgetcount -bin prog.sbf
//	gadgetcount -prog crc            # original vs LLVM-Obf vs Tigress
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gadgetcount:", err)
		os.Exit(1)
	}
}

var classes = []gadget.JmpType{
	gadget.TypeReturn, gadget.TypeUDJ, gadget.TypeUIJ,
	gadget.TypeCDJ, gadget.TypeCIJ, gadget.TypeSyscall,
}

func run() error {
	binPath := flag.String("bin", "", "SBF binary")
	progName := flag.String("prog", "", "built-in benchmark to compare across obfuscations")
	seed := flag.Int64("seed", 42, "obfuscation seed")
	flag.Parse()

	if *binPath != "" {
		data, err := os.ReadFile(*binPath)
		if err != nil {
			return err
		}
		bin, err := sbf.Unmarshal(data)
		if err != nil {
			return err
		}
		report(*binPath, bin)
		return nil
	}
	if *progName == "" {
		return fmt.Errorf("need -bin or -prog")
	}
	p, ok := benchprog.ByName(*progName)
	if !ok {
		return fmt.Errorf("unknown program %q", *progName)
	}
	for _, cfg := range []struct {
		name   string
		passes []obfuscate.Pass
	}{
		{"original", nil},
		{"llvm-obf", obfuscate.LLVMObf()},
		{"tigress", obfuscate.Tigress()},
	} {
		bin, err := benchprog.Build(p, cfg.passes, *seed)
		if err != nil {
			return err
		}
		report(fmt.Sprintf("%s/%s", *progName, cfg.name), bin)
	}
	return nil
}

func report(label string, bin *sbf.Binary) {
	counts := gadget.Count(bin, 10)
	fmt.Printf("%s: text=%d bytes, %d gadgets\n", label, bin.CodeSize(), gadget.TotalCount(counts))
	for _, t := range classes {
		fmt.Printf("  %-8s %7d\n", t, counts[t])
	}
}
