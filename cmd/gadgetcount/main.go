// Command gadgetcount reports gadget statistics for a binary or a built-in
// benchmark across obfuscation configurations — the data behind the paper's
// Fig. 1 and Table I.
//
// Usage:
//
//	gadgetcount -bin prog.sbf
//	gadgetcount -prog crc            # original vs LLVM-Obf vs Tigress
//	gadgetcount -server unix:/tmp/gpd.sock -prog crc
//
// Builds and scans run through the shared artifact store; with -cachedir
// (or GP_CACHE_DIR) they persist across invocations, like the other CLIs.
// With -server (or GPD_ADDR) the scans are served by a running gpd, whose
// warm store is shared by every client.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/cliutil"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gadgetcount:", err)
		os.Exit(1)
	}
}

var classes = []gadget.JmpType{
	gadget.TypeReturn, gadget.TypeUDJ, gadget.TypeUIJ,
	gadget.TypeCDJ, gadget.TypeCIJ, gadget.TypeSyscall,
}

// obfConfigs is the standard comparison: the paper's original vs LLVM-Obf
// vs Tigress arms.
var obfConfigs = []struct {
	name string
	spec string
}{
	{"original", ""},
	{"llvm-obf", "llvm"},
	{"tigress", "tigress"},
}

func run() error {
	binPath := flag.String("bin", "", "SBF binary")
	progName := flag.String("prog", "", "built-in benchmark to compare across obfuscations")
	seed := flag.Int64("seed", 42, "obfuscation seed")
	isaFlag := cliutil.ISAFlag(flag.CommandLine)
	server := cliutil.ServerFlag(flag.CommandLine)
	sf := cliutil.RegisterStore(flag.CommandLine)
	flag.Parse()

	isaName, err := cliutil.ResolveISA(*isaFlag)
	if err != nil {
		return err
	}
	if *server != "" {
		return runServed(*server, *binPath, *progName, *seed, isaName)
	}

	store, err := sf.Open()
	if err != nil {
		return err
	}

	if *binPath != "" {
		data, err := os.ReadFile(*binPath)
		if err != nil {
			return err
		}
		bin, err := sbf.Unmarshal(data)
		if err != nil {
			return err
		}
		report(store, *binPath, bin, isaName)
		return nil
	}
	if *progName == "" {
		return fmt.Errorf("need -bin or -prog")
	}
	p, ok := benchprog.ByName(*progName)
	if !ok {
		return fmt.Errorf("unknown program %q", *progName)
	}
	for _, cfg := range obfConfigs {
		passes, err := obfuscate.ParseSpec(cfg.spec)
		if err != nil {
			return err
		}
		bin, _, err := pipeline.BuildISACtx(context.Background(), store, p, passes, *seed, isaName)
		if err != nil {
			return err
		}
		report(store, fmt.Sprintf("%s/%s", *progName, cfg.name), bin, "")
	}
	return nil
}

// report scans bin. A non-empty isaName overrides the scan backend (the
// binary's own ISA tag otherwise) — e.g. scanning an rv64 binary under
// rv64c turns compressed decoding on over the same bytes.
func report(store *pipeline.Store, label string, bin *sbf.Binary, isaName string) {
	if isaName == "" {
		isaName = bin.ISA
	}
	counts := pipeline.CountISA(store, bin, 10, isaName)
	fmt.Printf("%s: text=%d bytes, %d gadgets\n", label, bin.CodeSize(), gadget.TotalCount(counts))
	for _, t := range classes {
		fmt.Printf("  %-8s %7d\n", t, counts[t])
	}
}

// runServed sends the scans to a gpd instance instead of computing locally.
func runServed(addr, binPath, progName string, seed int64, isaName string) error {
	client, err := serve.Dial(addr)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if binPath != "" {
		data, err := os.ReadFile(binPath)
		if err != nil {
			return err
		}
		if isaName != "" {
			return fmt.Errorf("-isa applies to source builds; served binaries are scanned under their own ISA tag")
		}
		res, err := client.Run(ctx, serve.Request{Op: serve.OpCount, Binary: data, Name: binPath}, nil)
		if err != nil {
			return err
		}
		reportServed(binPath, res)
		return nil
	}
	if progName == "" {
		return fmt.Errorf("need -bin or -prog")
	}
	for _, cfg := range obfConfigs {
		res, err := client.Run(ctx, serve.Request{
			Op: serve.OpCount, Program: progName, Obf: cfg.spec, Seed: seed, ISA: isaName,
		}, nil)
		if err != nil {
			return err
		}
		reportServed(fmt.Sprintf("%s/%s", progName, cfg.name), res)
	}
	return nil
}

func reportServed(label string, res *serve.Result) {
	fmt.Printf("%s: text=%d bytes, %d gadgets\n", label, res.TextBytes, res.Gadgets)
	for _, row := range res.Counts {
		fmt.Printf("  %-8s %7d\n", row.Class, row.Count)
	}
}
