// Command gp runs the Gadget-Planner pipeline on an SBF binary: gadget
// extraction, subsumption testing, partial-order planning, and payload
// construction with emulator verification.
//
// Usage:
//
//	gp -bin prog.sbf [-goal execve|mprotect|mmap|all] [-max 8] [-dump] [-v]
//	gp -server unix:/tmp/gpd.sock -bin prog.sbf   # served by a shared gpd
//
// With -server (or GPD_ADDR) the binary is submitted to a running gpd
// analysis service instead of being analyzed in-process: stage progress
// streams back as it happens, and the result is byte-identical to the
// local run — the daemon just keeps the artifact store warm across
// clients.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/cliutil"
	"github.com/nofreelunch/gadget-planner/internal/core"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gp:", err)
		os.Exit(1)
	}
}

func run() error {
	binPath := flag.String("bin", "", "SBF binary to analyze")
	goalName := flag.String("goal", "all", "attack goal: execve, mprotect, mmap, or all")
	maxPlans := flag.Int("max", 8, "maximum payloads per goal")
	dump := flag.Bool("dump", false, "dump payload bytes")
	verbose := flag.Bool("v", false, "print chains")
	timeout := flag.Duration("timeout", 30*time.Second, "planning timeout per goal")
	noTriage := flag.Bool("notriage", false, "disable solver query triage (A/B benchmarking; results are identical)")
	noPlanCache := flag.Bool("noplancache", false, "disable the planner's provider cache (A/B benchmarking; results are identical)")
	isaFlag := cliutil.ISAFlag(flag.CommandLine)
	server := cliutil.ServerFlag(flag.CommandLine)
	sf := cliutil.RegisterStore(flag.CommandLine).WithParallel(flag.CommandLine)
	flag.Parse()

	isaName, err := cliutil.ResolveISA(*isaFlag)
	if err != nil {
		return err
	}

	if *binPath == "" {
		return fmt.Errorf("need -bin")
	}
	data, err := os.ReadFile(*binPath)
	if err != nil {
		return err
	}

	if *server != "" {
		if *noTriage || *noPlanCache {
			return fmt.Errorf("-notriage/-noplancache are local A/B knobs; the server uses the canonical configuration")
		}
		if isaName != "" {
			return fmt.Errorf("-isa is a local scan override; served binaries are analyzed under their own ISA tag")
		}
		return runServed(*server, data, *binPath, *goalName, *maxPlans, *timeout, *dump, *verbose)
	}

	bin, err := sbf.Unmarshal(data)
	if err != nil {
		return err
	}
	store, err := sf.Open()
	if err != nil {
		return err
	}
	cfg := core.Config{
		Planner:     planner.Options{MaxPlans: *maxPlans, Timeout: *timeout, DisableCache: *noPlanCache},
		Parallelism: sf.Parallelism(),
		Store:       store,
	}
	cfg.Subsume.DisableTriage = *noTriage
	// -isa pins the scan backend; the default is the binary's own ISA tag.
	// The interesting override is scanning an rv64 binary under rv64c —
	// same bytes, compressed decoding on.
	cfg.Extract.ISA = isaName
	analysis := core.Analyze(bin, cfg)
	fmt.Printf("extraction: %d raw candidates, %d supported\n",
		analysis.RawPool.Stats.RawCandidates, analysis.RawPool.Size())
	fmt.Printf("subsumption: %s\n", analysis.SubsumeStats)

	allGoals := planner.GoalsForISA(analysis.Pool.ISA)
	goals := allGoals
	if *goalName != "all" {
		goals = nil
		for _, g := range allGoals {
			if g.Name == *goalName {
				goals = []planner.Goal{g}
			}
		}
		if goals == nil {
			return fmt.Errorf("unknown goal %q", *goalName)
		}
	}

	for _, goal := range goals {
		atk := analysis.FindPayloads(goal)
		fmt.Printf("\n== %s: %d verified payloads ==\n", goal.Name, len(atk.Payloads))
		fmt.Printf("search: %s\n", atk.Search.StatsLine())
		for i, pl := range atk.Payloads {
			fmt.Printf("payload %d: %d bytes, %d gadgets\n", i+1, len(pl.Bytes), len(pl.Chain))
			if *verbose {
				for _, g := range pl.Chain {
					fmt.Printf("    %s\n", g.StringOn(analysis.Pool.Backend()))
				}
			}
			if *dump {
				fmt.Print(pl.Dump())
			}
		}
	}

	fmt.Println("\nstage timings:")
	for _, t := range analysis.Timings {
		mark := ""
		if t.Cached {
			mark = "  (cached)"
		}
		fmt.Printf("  %-20s %10s %8.1f MB allocated%s\n",
			t.Name, t.Duration.Round(time.Millisecond), float64(t.AllocBytes)/(1<<20), mark)
	}
	fmt.Println(store.StatsLine())
	fmt.Println(pipeline.WallLine())
	return nil
}

// runServed submits the binary to a gpd instance and renders the streamed
// response. The body it prints is the result's canonical rendering — the
// same bytes a local run of this request produces.
func runServed(addr string, data []byte, name, goal string, maxPlans int, timeout time.Duration, dump, verbose bool) error {
	client, err := serve.Dial(addr)
	if err != nil {
		return err
	}
	req := serve.Request{
		Op:        serve.OpPlan,
		Binary:    data,
		Name:      name,
		Goal:      goal,
		MaxPlans:  maxPlans,
		TimeoutMS: timeout.Milliseconds(),
	}
	progress := func(ev serve.StageEvent) {
		if !verbose {
			return
		}
		mark := ""
		if ev.Cached {
			mark = "  (cached)"
		}
		fmt.Fprintf(os.Stderr, "  %-20s %8.1f ms%s\n", ev.Stage, ev.Millis, mark)
	}
	res, err := client.Run(context.Background(), req, progress)
	if err != nil {
		return err
	}
	fmt.Printf("server %s\n", addr)
	fmt.Print(res.Canon())
	if dump {
		for _, g := range res.Goals {
			for _, p := range g.Payloads {
				fmt.Print(dumpPayload(g.Goal, p))
			}
		}
	}
	return nil
}

// dumpPayload renders a served payload in payload.Dump's format.
func dumpPayload(goal string, p serve.PayloadResult) string {
	out := fmt.Sprintf("payload @ %#x, %d bytes, goal %s\n", p.Base, len(p.Data), goal)
	for off := 0; off+8 <= len(p.Data); off += 8 {
		var v uint64
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(p.Data[off+i])
		}
		out += fmt.Sprintf("  +%04x: %016x\n", off, v)
	}
	return out
}
