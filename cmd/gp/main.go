// Command gp runs the Gadget-Planner pipeline on an SBF binary: gadget
// extraction, subsumption testing, partial-order planning, and payload
// construction with emulator verification.
//
// Usage:
//
//	gp -bin prog.sbf [-goal execve|mprotect|mmap|all] [-max 8] [-dump] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/core"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gp:", err)
		os.Exit(1)
	}
}

func run() error {
	binPath := flag.String("bin", "", "SBF binary to analyze")
	goalName := flag.String("goal", "all", "attack goal: execve, mprotect, mmap, or all")
	maxPlans := flag.Int("max", 8, "maximum payloads per goal")
	dump := flag.Bool("dump", false, "dump payload bytes")
	verbose := flag.Bool("v", false, "print chains")
	timeout := flag.Duration("timeout", 30*time.Second, "planning timeout per goal")
	parallel := flag.Int("parallel", 0, "analysis workers (0 = all cores, 1 = serial; results are identical)")
	noTriage := flag.Bool("notriage", false, "disable solver query triage (A/B benchmarking; results are identical)")
	noPlanCache := flag.Bool("noplancache", false, "disable the planner's provider cache (A/B benchmarking; results are identical)")
	noCache := flag.Bool("nocache", false, "disable the artifact store (A/B benchmarking; results are identical)")
	cacheDir := flag.String("cachedir", os.Getenv("GP_CACHE_DIR"), "persistent artifact cache directory (default $GP_CACHE_DIR; empty disables the disk tier)")
	noDisk := flag.Bool("nodisk", false, "disable the persistent cache tier even with -cachedir set (A/B benchmarking; results are identical)")
	flag.Parse()

	if *binPath == "" {
		return fmt.Errorf("need -bin")
	}
	data, err := os.ReadFile(*binPath)
	if err != nil {
		return err
	}
	bin, err := sbf.Unmarshal(data)
	if err != nil {
		return err
	}

	store := pipeline.NewStore()
	if *noCache {
		store = pipeline.NewDisabledStore()
	}
	if *cacheDir != "" && !*noDisk && !*noCache {
		disk, err := pipeline.OpenDisk(*cacheDir, pipeline.DiskOptions{})
		if err != nil {
			return err
		}
		store.WithDisk(disk)
	}
	cfg := core.Config{
		Planner:     planner.Options{MaxPlans: *maxPlans, Timeout: *timeout, DisableCache: *noPlanCache},
		Parallelism: *parallel,
		Store:       store,
	}
	cfg.Subsume.DisableTriage = *noTriage
	analysis := core.Analyze(bin, cfg)
	fmt.Printf("extraction: %d raw candidates, %d supported\n",
		analysis.RawPool.Stats.RawCandidates, analysis.RawPool.Size())
	fmt.Printf("subsumption: %s\n", analysis.SubsumeStats)

	goals := planner.Goals()
	if *goalName != "all" {
		goals = nil
		for _, g := range planner.Goals() {
			if g.Name == *goalName {
				goals = []planner.Goal{g}
			}
		}
		if goals == nil {
			return fmt.Errorf("unknown goal %q", *goalName)
		}
	}

	for _, goal := range goals {
		atk := analysis.FindPayloads(goal)
		fmt.Printf("\n== %s: %d verified payloads ==\n", goal.Name, len(atk.Payloads))
		fmt.Printf("search: %s\n", atk.Search.StatsLine())
		for i, pl := range atk.Payloads {
			fmt.Printf("payload %d: %d bytes, %d gadgets\n", i+1, len(pl.Bytes), len(pl.Chain))
			if *verbose {
				for _, g := range pl.Chain {
					fmt.Printf("    %s\n", g)
				}
			}
			if *dump {
				fmt.Print(pl.Dump())
			}
		}
	}

	fmt.Println("\nstage timings:")
	for _, t := range analysis.Timings {
		mark := ""
		if t.Cached {
			mark = "  (cached)"
		}
		fmt.Printf("  %-20s %10s %8.1f MB allocated%s\n",
			t.Name, t.Duration.Round(time.Millisecond), float64(t.AllocBytes)/(1<<20), mark)
	}
	fmt.Println(store.StatsLine())
	fmt.Println(pipeline.WallLine())
	return nil
}
